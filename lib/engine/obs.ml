(* v2: added the "faults" list (typed fault log) to the metrics report
   v3: added the "resilience" section (retry / checkpoint / deadline
   counters)
   v4: added the "resource" section (GC counters, heap sizes, wall) *)
let metrics_schema_version = 4

(* v2: added the "resilience" section *)
let faults_schema_version = 2
let verify_schema_version = 1

let stages_json () =
  Json.List
    (List.map
       (fun (s : Trace.stage) ->
         Json.Obj
           [
             ("name", Json.String s.Trace.name);
             ("calls", Json.Int s.Trace.calls);
             ("tasks", Json.Int s.Trace.tasks);
             ("busy_s", Json.Float s.Trace.busy_s);
             ("wall_s", Json.Float s.Trace.wall_s);
           ])
       (Trace.stages ()))

let memo_json () =
  Json.List
    (List.map
       (fun (c : Trace.cache_counter) ->
         let total = c.Trace.hits + c.Trace.misses in
         Json.Obj
           [
             ("name", Json.String c.Trace.cache);
             ("hits", Json.Int c.Trace.hits);
             ("misses", Json.Int c.Trace.misses);
             ( "hit_rate",
               if total = 0 then Json.Null
               else Json.Float (float_of_int c.Trace.hits /. float_of_int total) );
           ])
       (Trace.cache_counters ()))

let faults_json () =
  (* canonical (stage, kind, detail) order: the log's append order
     depends on domain scheduling, the report must not *)
  Json.List (List.map Fault.to_json (List.sort Fault.compare (Fault.recorded ())))

(* the resilience layer's counters in one place: how many retries ran
   and what they rescued, what the checkpoint journal served back, and
   whether any kernel deadline fired *)
let resilience_json () =
  let c = Metrics.counter_value in
  Json.Obj
    [
      ( "retries",
        Json.Obj
          [
            ("attempts", Json.Int (c "retry.attempts"));
            ("recovered", Json.Int (c "retry.recovered"));
            ("exhausted", Json.Int (c "retry.exhausted"));
          ] );
      ( "checkpoint",
        Json.Obj
          [
            ("replayed", Json.Int (c "checkpoint.replayed"));
            ("served", Json.Int (c "checkpoint.served"));
            ("appended", Json.Int (c "checkpoint.appended"));
            ("dropped_tails", Json.Int (c "checkpoint.dropped"));
          ] );
      ("deadline", Json.Obj [ ("fired", Json.Int (c "deadline.fired")) ]);
    ]

let faults_report () =
  Json.Obj
    [
      ("schema_version", Json.Int faults_schema_version);
      ("faults", faults_json ());
      ("resilience", resilience_json ());
    ]

let verify_report ~checks =
  Json.Obj
    [
      ("schema_version", Json.Int verify_schema_version);
      ("checks", checks);
      (* crashed checks record their fault before settling, so the
         embedded log names every crash the checks list reports *)
      ("faults", faults_json ());
    ]

let metrics_report () =
  Json.Obj
    [
      ("schema_version", Json.Int metrics_schema_version);
      ("metrics", Metrics.to_json ());
      ("stages", stages_json ());
      ("memo", memo_json ());
      ("faults", faults_json ());
      ("resilience", resilience_json ());
      ("resource", Resource.summary_json ());
    ]

(* All report writes are atomic: the full document goes to
   [path ^ ".tmp"] in the same directory, then rename replaces the
   target in one step.  A run killed or deadline-expired mid-write can
   leave a stale .tmp behind but never a truncated report. *)
let write_text ~path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc text;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_json ~path json = write_text ~path (Json.to_string_pretty json)
let write_metrics ~path = write_json ~path (metrics_report ())
let write_faults ~path = write_json ~path (faults_report ())
let write_trace ~path = write_json ~path (Span.to_chrome_json ())
let write_openmetrics ~path = write_text ~path (Metrics.to_openmetrics ())
