(** Process-wide metrics registry: counters, gauges and log-bucketed
    histograms, keyed by name.

    Instrumented hot paths (LM fits, anneal moves, cache simulations,
    pool fan-outs) report here; [ppcache --metrics-json] and the bench
    report serialise a snapshot.  All operations are domain-safe — a
    single mutex guards the registry, which is fine because every call
    site is coarse (one update per fit / simulation / fan-out, never
    per cache access).

    Naming convention: dotted lowercase paths,
    [<subsystem>.<object>.<measure>] — e.g. [lm.leak.iterations],
    [anneal.accepted], [cachesim.accesses], [pool.fanout.tasks]. *)

val incr : ?by:int -> string -> unit
(** Bump a counter (creating it at 0 first).  [by] defaults to 1 and
    may be any integer. *)

val set_gauge : string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : string -> float -> unit
(** Add a sample to a histogram (creating it empty first).  Buckets
    are logarithmic — 16 per decade, so quantile estimates carry at
    most ~7% relative error; non-positive samples share one underflow
    bucket valued 0. *)

val observe_n : string -> float -> count:int -> unit
(** [observe_n name v ~count] records [count] identical samples of [v]
    under one registry lock — the bulk path for flushing pre-aggregated
    histograms (e.g. Intmap probe lengths).  No-op when [count = 0];
    raises [Invalid_argument] when negative. *)

val counter_value : string -> int
(** Current value; 0 if the counter was never bumped. *)

val gauge_value : string -> float option

type histogram_summary = {
  count : int;
  sum : float;
  min : float;   (** 0 when [count = 0] *)
  max : float;
  p50 : float;   (** bucket-midpoint estimates; 0 when [count = 0] *)
  p90 : float;
  p99 : float;
}

val histogram_summary : string -> histogram_summary option

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

val snapshot : unit -> snapshot
(** Consistent view of every metric, each section sorted by name (the
    serialised form is deterministic given deterministic updates). *)

val to_json : unit -> Json.t
(** [{ "counters": {..}, "gauges": {..}, "histograms": {name:
    {count,sum,min,max,p50,p90,p99}} }], sorted by name. *)

val escape_label_value : string -> string
(** OpenMetrics label-value escaping: backslash, double-quote and
    newline become backslash-escaped two-character sequences. *)

val escape_help : string -> string
(** OpenMetrics HELP-text escaping: backslash and newline only. *)

val to_openmetrics : unit -> string
(** Render the registry snapshot in the Prometheus/OpenMetrics text
    exposition format, terminated by [# EOF].  Registry names become
    the [name] label of three fixed families: [ppcache_counter_total]
    (counter), [ppcache_gauge] (gauge) and [ppcache_histogram]
    (summary with quantile 0.5/0.9/0.99 series plus _sum/_count). *)

val reset : unit -> unit
