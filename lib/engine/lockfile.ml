(* Advisory single-writer lock files (see the .mli for the contract).

   The lock is the classic O_EXCL file containing the owner's PID.
   Creation is atomic; stale detection is [kill pid 0].  We never
   [flock]: the journals these locks guard live on ordinary local
   filesystems, and the PID protocol additionally survives readers
   that just want to *inspect* who holds the lock.

   Stale locks are broken by *renaming* them to a per-breaker tombstone
   rather than unlinking in place.  Unlinking is a TOCTOU: two
   processes that both observe the same dead-PID lock can both remove
   "the" lock file — except the second removal may hit the fresh lock
   the first process just created, and then both believe they hold the
   directory.  rename(2) is atomic, so of N racing breakers exactly one
   moves the stale file aside; the losers see ENOENT and retry against
   whatever lock exists next. *)

exception Locked of { path : string; pid : int }

type t = { lock_path : string; mutable held : bool }

let path t = t.lock_path

let holder_pid ~path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> None
        | line -> int_of_string_opt (String.trim line))

(* [kill pid 0] probes liveness without signalling: ESRCH means the
   process is gone; EPERM means it exists but belongs to someone else
   (still live); success means live. *)
let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (_, _, _) -> true

let try_create lock_path =
  match Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let line = string_of_int (Unix.getpid ()) ^ "\n" in
        ignore (Unix.write_substring fd line 0 (String.length line)));
    true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

(* Test seam: runs after a stale (dead-PID) lock has been observed but
   before the tombstone rename — exactly the TOCTOU window.  The
   two-process regression test stalls here so both children observe the
   same stale lock before either breaks it. *)
let stale_break_hook : (unit -> unit) ref = ref (fun () -> ())
let break_serial = ref 0

(* Break a stale lock.  Atomic rename to a tombstone unique to this
   breaker; only the rename winner proceeds (losers hit ENOENT).  The
   winner re-validates the tombstone's PID: if a *live* lock slipped in
   between our staleness probe and the rename, we stole it — hand it
   back and report Locked.  (The hand-back rename has a residual
   three-breaker window, which the bounded retry absorbs: the displaced
   owner still holds the directory in its own eyes only if its PID file
   is back in place.) *)
let break_stale lock_path =
  !stale_break_hook ();
  incr break_serial;
  let tomb = Printf.sprintf "%s.break.%d.%d" lock_path (Unix.getpid ()) !break_serial in
  match Unix.rename lock_path tomb with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    (* another breaker won the rename; retry against the next state *)
    ()
  | exception Unix.Unix_error (_, _, _) -> ()
  | () -> (
    match holder_pid ~path:tomb with
    | Some pid when pid_alive pid ->
      (* we renamed a freshly-created live lock: restore it *)
      (try Unix.rename tomb lock_path with Unix.Unix_error (_, _, _) -> ());
      raise (Locked { path = lock_path; pid })
    | Some _ | None ->
      Metrics.incr "lock.stale_broken";
      (try Sys.remove tomb with Sys_error _ -> ()))

let acquire ~path:lock_path =
  (* bounded retry: each loop either creates the file, raises Locked on
     a live owner, or breaks one stale lock.  Two iterations suffice in
     the absence of a race; a few spares absorb concurrent breakers. *)
  let rec go attempts =
    if attempts = 0 then
      (* pathological churn: someone keeps recreating the lock between
         our break and our create — report the current holder *)
      raise
        (Locked
           { path = lock_path; pid = Option.value ~default:0 (holder_pid ~path:lock_path) })
    else if try_create lock_path then { lock_path; held = true }
    else begin
      (match holder_pid ~path:lock_path with
      | Some pid when pid_alive pid -> raise (Locked { path = lock_path; pid })
      | Some _ | None ->
        (* dead owner or unreadable junk: tombstone it and retry *)
        break_stale lock_path);
      go (attempts - 1)
    end
  in
  go 4

let release t =
  if t.held then begin
    t.held <- false;
    try Sys.remove t.lock_path with Sys_error _ -> ()
  end
