(* Advisory single-writer lock files (see the .mli for the contract).

   The lock is the classic O_EXCL file containing the owner's PID.
   Creation is atomic; stale detection is [kill pid 0].  We never
   [flock]: the journals these locks guard live on ordinary local
   filesystems, and the PID protocol additionally survives readers
   that just want to *inspect* who holds the lock. *)

exception Locked of { path : string; pid : int }

type t = { lock_path : string; mutable held : bool }

let path t = t.lock_path

let holder_pid ~path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> None
        | line -> int_of_string_opt (String.trim line))

(* [kill pid 0] probes liveness without signalling: ESRCH means the
   process is gone; EPERM means it exists but belongs to someone else
   (still live); success means live. *)
let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (_, _, _) -> true

let try_create lock_path =
  match Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let line = string_of_int (Unix.getpid ()) ^ "\n" in
        ignore (Unix.write_substring fd line 0 (String.length line)));
    true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

let acquire ~path:lock_path =
  (* bounded retry: each loop either creates the file, raises Locked on
     a live owner, or breaks one stale lock.  Two iterations suffice in
     the absence of a race; a few spares absorb concurrent breakers. *)
  let rec go attempts =
    if attempts = 0 then
      (* pathological churn: someone keeps recreating the lock between
         our break and our create — report the current holder *)
      raise
        (Locked
           { path = lock_path; pid = Option.value ~default:0 (holder_pid ~path:lock_path) })
    else if try_create lock_path then { lock_path; held = true }
    else begin
      (match holder_pid ~path:lock_path with
      | Some pid when pid_alive pid -> raise (Locked { path = lock_path; pid })
      | Some _ | None ->
        (* dead owner or unreadable junk: break the lock and retry *)
        Metrics.incr "lock.stale_broken";
        (try Sys.remove lock_path with Sys_error _ -> ()));
      go (attempts - 1)
    end
  in
  go 4

let release t =
  if t.held then begin
    t.held <- false;
    try Sys.remove t.lock_path with Sys_error _ -> ()
  end
