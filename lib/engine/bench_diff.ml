(* Bench-trajectory analyzer: compare any two BENCH_<label>.json
   reports and render a per-metric delta table.

   Reads both bench schema v2 (the committed BENCH_baseline.json /
   BENCH_pr6.json trajectory points) and v3 (adds "digest" and
   "resource") — missing sections simply don't produce rows, so old
   and new reports diff against each other freely.

   The gate is a wall-time ratio: [--gate R] fails (exit 1 in the CLI)
   when wall_s(B) > R * wall_s(A), with A conventionally the older /
   baseline report.  R = 1.5 is the CI policy inherited from the
   bench-smoke check this tool replaces. *)

type stage = { s_name : string; s_calls : int; s_wall_s : float }
type memo = { m_name : string; m_hits : int; m_misses : int }

type report = {
  path : string;
  schema_version : int;
  label : string;
  scenario : string option;
  jobs : int;
  quick : bool;
  wall_s : float;
  experiments : (string * float) list; (* id, wall_s *)
  stages : stage list;
  memos : memo list;
  digest : float option; (* schema >= 3 *)
  resource : Json.t option; (* schema >= 3 *)
}

let str_field j name = Option.bind (Json.member name j) Json.to_str
let int_field j name = Option.bind (Json.member name j) Json.to_int
let float_field j name = Option.bind (Json.member name j) Json.to_float

let require path what = function
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing or malformed %s" path what)

let of_json ~path j =
  let list_field name =
    match Option.bind (Json.member name j) Json.to_list with
    | Some l -> l
    | None -> []
  in
  {
    path;
    schema_version = require path "schema_version" (int_field j "schema_version");
    label = require path "label" (str_field j "label");
    scenario = str_field j "scenario";
    jobs = Option.value ~default:1 (int_field j "jobs");
    quick =
      (match Json.member "quick" j with Some (Json.Bool b) -> b | _ -> false);
    wall_s = require path "wall_s" (float_field j "wall_s");
    experiments =
      List.filter_map
        (fun e ->
          match (str_field e "id", float_field e "wall_s") with
          | Some id, Some w -> Some (id, w)
          | _ -> None)
        (list_field "experiments");
    stages =
      List.filter_map
        (fun s ->
          match (str_field s "name", float_field s "wall_s") with
          | Some n, Some w ->
            Some
              {
                s_name = n;
                s_calls = Option.value ~default:0 (int_field s "calls");
                s_wall_s = w;
              }
          | _ -> None)
        (list_field "stages");
    memos =
      List.filter_map
        (fun m ->
          match (str_field m "name", int_field m "hits", int_field m "misses") with
          | Some n, Some h, Some mi -> Some { m_name = n; m_hits = h; m_misses = mi }
          | _ -> None)
        (list_field "memo");
    digest = float_field j "digest";
    resource = Json.member "resource" j;
  }

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse text with
  | Ok j -> of_json ~path j
  | Error msg -> failwith (Printf.sprintf "%s: not valid JSON (%s)" path msg)

(* ---- delta table ----------------------------------------------------- *)

type row = {
  metric : string;
  a : string; (* rendered values; "-" when the side lacks the metric *)
  b : string;
  delta : string;
}

let ratio_str a b =
  if a > 0.0 then Printf.sprintf "%+.1f%% (x%.2f)" ((b /. a -. 1.0) *. 100.0) (b /. a)
  else "-"

let secs v = Printf.sprintf "%.3f s" v

let hit_rate (m : memo) =
  let total = m.m_hits + m.m_misses in
  if total = 0 then None else Some (float_of_int m.m_hits /. float_of_int total)

(* union of names from both sides, A-side order first so the table is
   stable under argument swap up to the trailing B-only rows *)
let union_names names_a names_b =
  names_a @ List.filter (fun n -> not (List.mem n names_a)) names_b

let rows (a : report) (b : report) =
  let wall =
    {
      metric = "wall_s";
      a = secs a.wall_s;
      b = secs b.wall_s;
      delta = ratio_str a.wall_s b.wall_s;
    }
  in
  let experiments =
    union_names (List.map fst a.experiments) (List.map fst b.experiments)
    |> List.map (fun id ->
           let va = List.assoc_opt id a.experiments in
           let vb = List.assoc_opt id b.experiments in
           {
             metric = "experiment " ^ id;
             a = (match va with Some v -> secs v | None -> "-");
             b = (match vb with Some v -> secs v | None -> "-");
             delta =
               (match (va, vb) with
               | Some va, Some vb -> ratio_str va vb
               | _ -> "-");
           })
  in
  let stage_of r n = List.find_opt (fun s -> s.s_name = n) r.stages in
  let stages =
    union_names
      (List.map (fun s -> s.s_name) a.stages)
      (List.map (fun s -> s.s_name) b.stages)
    |> List.map (fun n ->
           let sa = stage_of a n and sb = stage_of b n in
           {
             metric = "stage " ^ n;
             a = (match sa with Some s -> secs s.s_wall_s | None -> "-");
             b = (match sb with Some s -> secs s.s_wall_s | None -> "-");
             delta =
               (match (sa, sb) with
               | Some sa, Some sb -> ratio_str sa.s_wall_s sb.s_wall_s
               | _ -> "-");
           })
  in
  let memo_of r n = List.find_opt (fun m -> m.m_name = n) r.memos in
  let memos =
    union_names
      (List.map (fun m -> m.m_name) a.memos)
      (List.map (fun m -> m.m_name) b.memos)
    |> List.map (fun n ->
           let render m =
             match Option.bind m hit_rate with
             | Some r -> Printf.sprintf "%.1f%% hits" (100.0 *. r)
             | None -> "-"
           in
           {
             metric = "memo " ^ n;
             a = render (memo_of a n);
             b = render (memo_of b n);
             delta = "";
           })
  in
  let digest =
    match (a.digest, b.digest) with
    | None, None -> []
    | da, db ->
      [
        {
          metric = "digest";
          a = (match da with Some d -> Printf.sprintf "%.6f" d | None -> "-");
          b = (match db with Some d -> Printf.sprintf "%.6f" d | None -> "-");
          delta =
            (match (da, db) with
            | Some da, Some db when da = db -> "identical"
            | Some _, Some _ -> "DIFFERS"
            | _ -> "-");
        };
      ]
  in
  let resource_row name r =
    Option.bind r.resource (fun res ->
        Option.bind (Json.member name res) Json.to_float)
  in
  let resources =
    List.filter_map
      (fun (field, label) ->
        let va = resource_row field a and vb = resource_row field b in
        if va = None && vb = None then None
        else
          Some
            {
              metric = label;
              a = (match va with Some v -> Printf.sprintf "%.3g" v | None -> "-");
              b = (match vb with Some v -> Printf.sprintf "%.3g" v | None -> "-");
              delta =
                (match (va, vb) with
                | Some va, Some vb -> ratio_str va vb
                | _ -> "-");
            })
      [
        ("allocated_words", "resource allocated_words");
        ("peak_heap_words", "resource peak_heap_words");
        ("major_collections", "resource major_collections");
      ]
  in
  (wall :: experiments) @ stages @ memos @ digest @ resources

let render (a : report) (b : report) =
  let buf = Buffer.create 1024 in
  let describe (r : report) =
    Printf.sprintf "%s (label %s, schema v%d%s, jobs %d%s)" r.path r.label
      r.schema_version
      (match r.scenario with Some s -> ", scenario " ^ s | None -> "")
      r.jobs
      (if r.quick then ", quick" else "")
  in
  Buffer.add_string buf (Printf.sprintf "A: %s\nB: %s\n\n" (describe a) (describe b));
  let table = rows a b in
  let w_metric =
    List.fold_left (fun w r -> max w (String.length r.metric)) 6 table
  in
  let w_a = List.fold_left (fun w r -> max w (String.length r.a)) 1 table in
  let w_b = List.fold_left (fun w r -> max w (String.length r.b)) 1 table in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %*s  %*s  %s\n" w_metric "metric" w_a "A" w_b "B"
       "delta (B vs A)");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %*s  %*s  %s\n" w_metric r.metric w_a r.a w_b r.b
           r.delta))
    table;
  Buffer.contents buf

(* gate: B regressed past [ratio] times A's wall time *)
let gate_exceeded ~ratio (a : report) (b : report) = b.wall_s > ratio *. a.wall_s

let gate_verdict ~ratio a b =
  if gate_exceeded ~ratio a b then
    Printf.sprintf "GATE FAIL: wall_s %.3f s > %.2f x %.3f s (= %.3f s)" b.wall_s
      ratio a.wall_s (ratio *. a.wall_s)
  else
    Printf.sprintf "gate ok: wall_s %.3f s <= %.2f x %.3f s (= %.3f s)" b.wall_s
      ratio a.wall_s (ratio *. a.wall_s)
