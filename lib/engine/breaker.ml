(* Deterministic per-key circuit breakers (see the .mli).

   State machine per key:

     Closed(f)   --fail--> Closed(f+1)         (f+1 < threshold)
     Closed(f)   --fail--> Open(cooldown)      (f+1 = threshold)
     Closed(_)   --ok---->  Closed(0)
     Open(r)     --any--->  Open(r-1)          (r > 1; the tick is the
                                                deflected request itself)
     Open(1)     --any--->  Half_open
     Half_open   --ok---->  Closed(0)
     Half_open   --fail-->  Open(cooldown)

   No clocks anywhere: cooldown is measured in requests on the key, so
   a replayed request stream reproduces the same breaker evolution
   byte-for-byte. *)

type state = Closed | Open of int | Half_open

type cell = { mutable failures : int; mutable st : state }

type t = {
  threshold : int;
  cooldown : int;
  cells : (string, cell) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(threshold = 3) ?(cooldown = 8) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if cooldown < 1 then invalid_arg "Breaker.create: cooldown < 1";
  { threshold; cooldown; cells = Hashtbl.create 32; lock = Mutex.create () }

let cell t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = { failures = 0; st = Closed } in
    Hashtbl.replace t.cells key c;
    c

let state t ~key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.cells key with None -> Closed | Some c -> c.st)

let admit t ~key =
  match state t ~key with Closed | Half_open -> true | Open _ -> false

let record t ~key ~ok =
  Mutex.protect t.lock (fun () ->
      let c = cell t key in
      match c.st with
      | Closed ->
        if ok then c.failures <- 0
        else begin
          c.failures <- c.failures + 1;
          if c.failures >= t.threshold then begin
            c.st <- Open t.cooldown;
            Metrics.incr "breaker.tripped"
          end
        end
      | Open r ->
        (* the deflected request is the cooldown clock; its ok flag is
           meaningless (nothing was computed) *)
        c.st <- (if r <= 1 then Half_open else Open (r - 1))
      | Half_open ->
        if ok then begin
          c.failures <- 0;
          c.st <- Closed;
          Metrics.incr "breaker.closed"
        end
        else begin
          c.st <- Open t.cooldown;
          Metrics.incr "breaker.tripped"
        end)

let tripped_keys t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun key c acc ->
          match c.st with
          | Closed when c.failures = 0 -> acc
          | st -> (key, st) :: acc)
        t.cells [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t = Mutex.protect t.lock (fun () -> Hashtbl.reset t.cells)
