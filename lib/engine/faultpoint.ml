type arm = Always | Prob of float | Key of string

type config = {
  seed : int64;
  arms : (string * arm) list;
  spec : string;
}

let state : config option Atomic.t = Atomic.make None

let clear () = Atomic.set state None
let active () = Atomic.get state <> None
let spec () = Option.map (fun c -> c.spec) (Atomic.get state)

(* splitmix64 finaliser over an FNV-1a pass: cheap, dependency-free,
   and stable across platforms — the whole point is that the same
   (seed, point, key) always draws the same number, whatever domain or
   --jobs setting evaluates it *)
let fnv1a h0 s =
  String.fold_left
    (fun h c -> Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) 0x100000001b3L)
    h0 s

let mix h =
  let h = Int64.add h 0x9e3779b97f4a7c15L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let draw ~seed ~point ~key =
  let h = fnv1a 0xcbf29ce484222325L (Int64.to_string seed) in
  let h = fnv1a (mix h) point in
  let h = mix (fnv1a (mix h) key) in
  (* top 53 bits -> uniform in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let parse spec =
  let entries =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  let rec go seed arms = function
    | [] -> Ok { seed; arms = List.rev arms; spec }
    | entry :: rest -> (
      let entry = String.trim entry in
      match String.index_opt entry '=' with
      | Some i ->
        let name = String.sub entry 0 i in
        let key = String.sub entry (i + 1) (String.length entry - i - 1) in
        if name = "" then Error (Printf.sprintf "empty fault point in %S" entry)
        else go seed ((name, Key key) :: arms) rest
      | None -> (
        match String.index_opt entry ':' with
        | Some i -> (
          let name = String.sub entry 0 i in
          let value = String.sub entry (i + 1) (String.length entry - i - 1) in
          if name = "" then Error (Printf.sprintf "empty fault point in %S" entry)
          else if name = "seed" then
            match Int64.of_string_opt value with
            | Some s -> go s arms rest
            | None -> Error (Printf.sprintf "seed wants an integer, got %S" value)
          else
            match float_of_string_opt value with
            | Some p when p >= 0.0 && p <= 1.0 -> go seed ((name, Prob p) :: arms) rest
            | Some _ -> Error (Printf.sprintf "probability out of [0,1] in %S" entry)
            | None -> Error (Printf.sprintf "bad probability in %S" entry))
        | None ->
          if entry = "" then go seed arms rest
          else go seed ((entry, Always) :: arms) rest))
  in
  go 0L [] entries

let configure spec =
  match parse spec with
  | Ok config ->
    Atomic.set state (Some config);
    Ok ()
  | Error _ as e -> e

let armed_seed () = Option.map (fun c -> c.seed) (Atomic.get state)

(* retry semantics per arm: [Always] models a permanent fault (fires on
   every attempt, a retry can never mask it); [Key] models a targeted
   transient (fires on the first attempt only, so a retry boundary
   recovers it); [Prob] redraws per attempt — the effective key gains
   an "#aN" suffix for N > 1, keeping attempt 1 byte-compatible with
   the pre-retry draw *)
let should_fire ?(attempt = 1) ~point ~key () =
  match Atomic.get state with
  | None -> false
  | Some { seed; arms; _ } ->
    List.exists
      (fun (name, arm) ->
        String.equal name point
        &&
        match arm with
        | Always -> true
        | Key k -> String.equal k key && attempt = 1
        | Prob p ->
          let key = if attempt = 1 then key else Printf.sprintf "%s#a%d" key attempt in
          draw ~seed ~point ~key < p)
      arms

let hit ?(attempt = 1) ~point ~key () =
  if should_fire ~attempt ~point ~key () then begin
    Metrics.incr "faults.injected";
    Fault.error ~kind:Fault.Injected ~stage:point key
  end

let env_var = "PPCACHE_FAULTS"

let configure_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok false
  | Some spec -> Result.map (fun () -> true) (configure spec)
