(** Parallel, deterministic sweeps: evaluate one {!Task} over every
    element of a collection.

    Output order always equals input order, so for pure kernels the
    result — and anything rendered from it — is byte-identical
    whatever the [jobs] setting.  Each sweep records a {!Trace} stage
    sample (task count, busy time, wall time), fan-out metrics in
    {!Metrics} ([pool.fanouts], [pool.fanout.tasks],
    [pool.fanout.domains]) and — when {!Span} collection is enabled —
    a [sweep:<task>] span with one child span per kernel, re-parented
    across the domain boundary so the tree survives parallel
    execution. *)

val map_array : ?pool:Pool.t -> ('a, 'b) Task.t -> 'a array -> 'b array
(** Defaults to a pool of {!Executor.get_jobs} width. *)

val map_list : ?pool:Pool.t -> ('a, 'b) Task.t -> 'a list -> 'b list

val map_array_result :
  ?pool:Pool.t -> ('a, 'b) Task.t -> 'a array -> ('b, Fault.t) result array
(** Partial-result sweep: a failing kernel settles as [Error fault] in
    its own slot — classified by {!Fault.of_exn} under the task's name
    and appended to the {!Fault} log — while every other item still
    evaluates.  For kernels whose outcome is a pure function of their
    input (which {!Faultpoint} injection preserves by design) the
    result array is byte-identical whatever the [jobs] setting. *)

val map_list_result :
  ?pool:Pool.t -> ('a, 'b) Task.t -> 'a list -> ('b, Fault.t) result list
