(** Parallel, deterministic sweeps: evaluate one {!Task} over every
    element of a collection.

    Output order always equals input order, so for pure kernels the
    result — and anything rendered from it — is byte-identical
    whatever the [jobs] setting.  Each sweep records a {!Trace} stage
    sample (task count, busy time, wall time), fan-out metrics in
    {!Metrics} ([pool.fanouts], [pool.fanout.tasks],
    [pool.fanout.domains]) and — when {!Span} collection is enabled —
    a [sweep:<task>] span with one child span per kernel, re-parented
    across the domain boundary so the tree survives parallel
    execution. *)

val map_array : ?pool:Pool.t -> ('a, 'b) Task.t -> 'a array -> 'b array
(** Defaults to a pool of {!Executor.get_jobs} width. *)

val map_list : ?pool:Pool.t -> ('a, 'b) Task.t -> 'a list -> 'b list
