(** Advisory single-writer lock files for on-disk journals.

    The checkpoint journal and the persistent model store are
    append-only files with per-record CRCs: corruption-tolerant against
    crashes, but defenceless against two live processes interleaving
    appends into the same file.  A lock file makes that failure mode
    loud: {!acquire} creates [<target>.lock] with [O_CREAT | O_EXCL]
    and writes the owner's PID into it, so a second process armed on
    the same journal fails fast (the CLI maps {!Locked} to exit 2)
    instead of silently corrupting records.

    Stale locks are self-healing: a SIGKILLed owner leaves its lock
    file behind, but its PID is dead, so the next {!acquire} detects
    the stale owner ([kill pid 0] raising [ESRCH]), breaks the lock and
    retries.  A PID that is merely unverifiable (permission errors) is
    treated as live — false "locked" beats false "stale".

    Breaking is rename-based, not unlink-based: the breaker atomically
    renames the stale file to a tombstone unique to itself, so of N
    processes racing to break the same dead lock exactly one wins (the
    others' renames fail with [ENOENT] and retry against whatever lock
    exists next).  The winner re-validates the tombstoned PID before
    discarding it; a live lock that slipped into the window is handed
    back and reported as {!Locked}.  The naive unlink protocol is a
    double-acquire TOCTOU: the second breaker's [unlink] can hit the
    first breaker's fresh lock. *)

exception Locked of { path : string; pid : int }
(** The lock at [path] is held by a live process [pid]. *)

type t

val acquire : path:string -> t
(** Take the lock file at [path] (conventionally [<journal>.lock]),
    writing this process's PID into it.  Raises {!Locked} when a live
    process holds it — including this process itself: one journal
    handle per directory, even in-process.  A lock file naming a dead
    PID is removed and re-acquired (counted under [lock.stale_broken]).
    Raises [Unix.Unix_error] on filesystem failures. *)

val release : t -> unit
(** Remove the lock file.  Idempotent; never raises (a lock directory
    deleted behind our back is already unlocked). *)

val path : t -> string

val holder_pid : path:string -> int option
(** The PID recorded in the lock file at [path], if it exists and
    parses — exposed for tests and diagnostics. *)

val stale_break_hook : (unit -> unit) ref
(** Test seam: called after a stale lock has been observed, before the
    tombstone rename — the TOCTOU window.  The two-process regression
    test stalls here; production leaves the default no-op. *)
