type stage = {
  name : string;
  mutable calls : int;
  mutable tasks : int;
  mutable busy_s : float;
  mutable wall_s : float;
}

type cache_counter = {
  cache : string;
  mutable hits : int;
  mutable misses : int;
}

let mutex = Mutex.create ()
let stage_table : (string, stage) Hashtbl.t = Hashtbl.create 16
let stage_order : string list ref = ref []
let cache_table : (string, cache_counter) Hashtbl.t = Hashtbl.create 16
let cache_order : string list ref = ref []

let record ~stage:name ~tasks ~busy_s ~wall_s =
  Mutex.protect mutex (fun () ->
      let s =
        match Hashtbl.find_opt stage_table name with
        | Some s -> s
        | None ->
          let s = { name; calls = 0; tasks = 0; busy_s = 0.0; wall_s = 0.0 } in
          Hashtbl.replace stage_table name s;
          stage_order := name :: !stage_order;
          s
      in
      s.calls <- s.calls + 1;
      s.tasks <- s.tasks + tasks;
      s.busy_s <- s.busy_s +. busy_s;
      s.wall_s <- s.wall_s +. wall_s)

let with_stage name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      record ~stage:name ~tasks:1 ~busy_s:dt ~wall_s:dt)
    f

let cache_counter name =
  match Hashtbl.find_opt cache_table name with
  | Some c -> c
  | None ->
    let c = { cache = name; hits = 0; misses = 0 } in
    Hashtbl.replace cache_table name c;
    cache_order := name :: !cache_order;
    c

let cache_hit name =
  Mutex.protect mutex (fun () ->
      let c = cache_counter name in
      c.hits <- c.hits + 1)

let cache_miss name =
  Mutex.protect mutex (fun () ->
      let c = cache_counter name in
      c.misses <- c.misses + 1)

let cache_stats name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt cache_table name with
      | Some c -> (c.hits, c.misses)
      | None -> (0, 0))

let stages () =
  Mutex.protect mutex (fun () ->
      List.rev_map (fun n -> Hashtbl.find stage_table n) !stage_order)

let cache_counters () =
  Mutex.protect mutex (fun () ->
      List.rev_map (fun n -> Hashtbl.find cache_table n) !cache_order)

let reset () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset stage_table;
      stage_order := [];
      Hashtbl.reset cache_table;
      cache_order := [])

(* --- rendering ------------------------------------------------------ *)

let render_table buf ~title ~columns rows =
  let all = columns :: rows in
  let n = List.length columns in
  let widths = Array.make n 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
  let row cells =
    Buffer.add_string buf "  ";
    List.iteri
      (fun i cell -> Buffer.add_string buf (Printf.sprintf "%-*s" (widths.(i) + 2) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  row columns;
  Buffer.add_string buf "  ";
  Array.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-')) widths;
  Buffer.add_char buf '\n';
  List.iter row rows

let summary () =
  let ss = stages () and cs = cache_counters () in
  if ss = [] && cs = [] then ""
  else begin
    let buf = Buffer.create 1024 in
    if ss <> [] then begin
      let rows =
        List.map
          (fun s ->
            [
              s.name;
              string_of_int s.calls;
              string_of_int s.tasks;
              Printf.sprintf "%.3f" s.busy_s;
              Printf.sprintf "%.3f" s.wall_s;
              (if s.wall_s > 0.0 then Printf.sprintf "%.2fx" (s.busy_s /. s.wall_s)
               else "-");
            ])
          ss
      in
      let busy = List.fold_left (fun a s -> a +. s.busy_s) 0.0 ss in
      let wall = List.fold_left (fun a s -> a +. s.wall_s) 0.0 ss in
      let total =
        [
          "total";
          string_of_int (List.fold_left (fun a s -> a + s.calls) 0 ss);
          string_of_int (List.fold_left (fun a s -> a + s.tasks) 0 ss);
          Printf.sprintf "%.3f" busy;
          Printf.sprintf "%.3f" wall;
          (if wall > 0.0 then Printf.sprintf "%.2fx" (busy /. wall) else "-");
        ]
      in
      render_table buf ~title:"engine trace: stages"
        ~columns:[ "stage"; "calls"; "tasks"; "busy (s)"; "wall (s)"; "speedup" ]
        (rows @ [ total ])
    end;
    if cs <> [] then begin
      if ss <> [] then Buffer.add_char buf '\n';
      let rows =
        List.map
          (fun c ->
            let total = c.hits + c.misses in
            [
              c.cache;
              string_of_int c.hits;
              string_of_int c.misses;
              (if total = 0 then "-"
               else Printf.sprintf "%.0f%%" (100.0 *. float_of_int c.hits /. float_of_int total));
            ])
          cs
      in
      render_table buf ~title:"engine trace: memo caches"
        ~columns:[ "cache"; "hits"; "misses"; "hit rate" ]
        rows
    end;
    Buffer.contents buf
  end
