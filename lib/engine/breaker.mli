(** Deterministic per-key circuit breakers for the serve loop.

    A (workload, config) key whose fits keep exhausting their retries
    should stop being hammered: after [threshold] consecutive compute
    failures the key's breaker {e trips} and the next [cooldown]
    requests on that key are answered without touching the numeric
    stack (degraded answers from the nearest cached model, or a
    [circuit_open] error).  After the cooldown the breaker goes
    half-open: one probe request computes for real — success closes
    the breaker, failure re-trips it for another cooldown.

    Determinism is the design constraint, exactly as for {!Faultpoint}:
    state advances on {e request counts}, never wall-clock time, and
    the serve loop applies updates at batch boundaries in request
    order, so breaker evolution — and therefore every degraded
    response — is byte-identical at any [--jobs].

    All operations are domain-safe (one mutex; call sites are
    per-request, never per-iteration). *)

type t

type state =
  | Closed      (** normal operation; failures are being counted *)
  | Open of int (** tripped; the payload is the cooldown remaining *)
  | Half_open   (** cooldown spent; the next request is the probe *)

val create : ?threshold:int -> ?cooldown:int -> unit -> t
(** [threshold] consecutive failures trip a key (default 3);
    [cooldown] requests are then deflected (default 8).  Raises
    [Invalid_argument] when either is < 1. *)

val state : t -> key:string -> state
(** The key's current state.  Pure read — admission decisions during a
    batch all see the same snapshot. *)

val admit : t -> key:string -> bool
(** [true] when a request on [key] should compute ([Closed] or
    [Half_open]), [false] when it should be deflected ([Open]). *)

val record : t -> key:string -> ok:bool -> unit
(** Advance the key's state machine with a request outcome, in request
    order: a failure in [Closed] counts toward the threshold (tripping
    trips the breaker and bumps [breaker.tripped]); any outcome in
    [Open] burns one cooldown tick; the [Half_open] probe's outcome
    closes ([ok], counted under [breaker.closed]) or re-trips the
    breaker.  Deflected requests record [ok:false] — they are the
    cooldown clock. *)

val tripped_keys : t -> (string * state) list
(** Every key not currently [Closed]-with-zero-failures, sorted by key
    — the health report's breaker table. *)

val reset : t -> unit
