(** Persistent cross-run model store: the {!Checkpoint} journal idea
    generalised from "one run's sweep slots" to "every expensive
    artefact this machine has ever computed".

    The store is an append-only binary journal ([DIR/store.ppck], magic
    [PPSTOR01]) of [(namespace, key) -> marshalled value] records, each
    guarded by the same CRC-32 as the checkpoint journal and flushed as
    written.  Opening always replays: records are read until the first
    truncated or CRC-mismatching one, the file is truncated back to the
    last good record, and the lost tail is simply recomputed by later
    queries — a SIGKILL mid-append can at worst lose the record being
    written.  Replay is first-write-wins, mirroring {!add}: a duplicate
    key on disk is a *dead* record that can never be served.  Dead
    records and bytes are counted at replay and reclaimed by
    {!compact}, which rewrites the live records into a fresh
    [PPSTOR02] segment via tmp+rename — the old segment stays
    authoritative until the single atomic rename, so a SIGKILL at any
    instruction of compaction loses nothing.  A {!Lockfile} on
    [store.ppck.lock] enforces one writer per directory (stale locks
    from dead owners are broken automatically).

    [ppcache serve] arms one store process-wide ({!set_active}) and
    keys everything by {!Core.Context.fingerprint}-derived strings:

    - ["model"]    — fitted cache models ({!Nmcache_fit.Fitted_cache.t}),
                     so a restarted server never re-characterises a
                     cache it has seen under any budget;
    - ["curve"]    — memoised miss-rate curves;
    - ["response"] — rendered query results, so a warm query answers in
                     microseconds without touching the numeric stack.

    Values travel through [Marshal]: a lookup must deserialise at the
    type that was stored, which the namespace discipline guarantees —
    one namespace, one value type.  All operations are domain-safe. *)

type t

val open_ : dir:string -> t
(** Open (creating [dir] as needed) and replay the store at
    [dir/store.ppck], truncating any corrupt tail.  Raises
    {!Lockfile.Locked} when another live process holds the directory.
    Counters: [store.replayed], [store.dropped]. *)

val close : t -> unit
(** Flush, close and release the writer lock.  Idempotent. *)

val flush : t -> unit
(** Force buffered appends to disk (appends already flush per record;
    this is the belt-and-braces call on graceful drain). *)

val lookup : t -> ns:string -> key:string -> 'a option
(** The stored value for [(ns, key)], if present — counted under
    [store.hits]; misses under [store.misses].  Unsafe at the wrong
    type, like [Marshal]; respect the namespace discipline. *)

val add : t -> ns:string -> key:string -> 'a -> unit
(** Persist [(ns, key) -> value] (marshalled, CRC-guarded, flushed)
    unless the key is already present — first write wins, so replayed
    and recomputed values can never fight.  Counted under
    [store.appended]. *)

val mem : t -> ns:string -> key:string -> bool

val keys : t -> ns:string -> string list
(** Every key stored under [ns], sorted — the nearest-neighbour index
    the degraded-answer path scans.  Deterministic for a deterministic
    request history. *)

val entries : t -> int
val replayed : t -> int
val appended : t -> int
val served : t -> int
val dropped_tail : t -> bool
val dir : t -> string
val path : t -> string

val bytes : t -> int
(** Current on-disk size of the journal file in bytes. *)

val segment_version : t -> int
(** 1 for a [PPSTOR01] append-grown journal, 2 for a [PPSTOR02]
    compacted segment (both append-able; {!compact} moves to 2). *)

val live_bytes : t -> int
(** Record bytes (excluding the 8-byte magic) of live records — the
    size a compacted segment's body would have. *)

val dead_records : t -> int
(** On-disk records shadowed by an earlier write of the same key:
    unreachable under first-write-wins, reclaimable by {!compact}. *)

val dead_bytes : t -> int
(** Record bytes occupied by dead records. *)

(* -- compaction ------------------------------------------------------ *)

type compact_stats = {
  live : int;  (** records written to the new segment *)
  reclaimed_records : int;  (** dead records dropped *)
  reclaimed_bytes : int;  (** dead record bytes dropped *)
  before_bytes : int;  (** on-disk size before *)
  after_bytes : int;  (** on-disk size after *)
}

val compact : ?on_step:(int -> unit) -> t -> compact_stats
(** Rewrite the live records (sorted by key — deterministic) into a
    fresh [PPSTOR02] segment: write [store.ppck.tmp], fsync, then
    atomically [rename] it over [store.ppck] and reopen the append
    channel.  The old segment is authoritative until the rename — the
    single commit point — so a SIGKILL at any instruction leaves either
    the complete old segment or the complete new one; a leftover [.tmp]
    is discarded by the next {!open_}.  Requires the store open; the
    held {!Lockfile} already excludes other writers.  Counters:
    [store.compactions], [store.reclaimed_bytes].

    [on_step] is the chaos-test kill seam: [0] before the tmp exists,
    [i] after the i-th live record, [live+1] after the fsync (just
    before the rename), [live+2] after the rename. *)

(* -- the process-wide active store ---------------------------------- *)

val set_active : t option -> unit
val active : unit -> t option

(* -- exposed for tests ----------------------------------------------- *)

val magic : string
(** ["PPSTOR01"] — append-grown journal. *)

val magic_compacted : string
(** ["PPSTOR02"] — compacted segment written by {!compact}. *)

val store_name : string
(** ["store.ppck"]. *)

val encode_record : ns:string -> key:string -> value:string -> string
(** The raw on-disk bytes of one record ([value] is the already-encoded
    payload, e.g. a [Marshal] string) — exposed so tests and the chaos
    harness can synthesize duplicate (dead) or torn records without
    replicating the binary format. *)
