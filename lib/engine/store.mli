(** Persistent cross-run model store: the {!Checkpoint} journal idea
    generalised from "one run's sweep slots" to "every expensive
    artefact this machine has ever computed".

    The store is an append-only binary journal ([DIR/store.ppck], magic
    [PPSTOR01]) of [(namespace, key) -> marshalled value] records, each
    guarded by the same CRC-32 as the checkpoint journal and flushed as
    written.  Opening always replays: records are read until the first
    truncated or CRC-mismatching one, the file is truncated back to the
    last good record, and the lost tail is simply recomputed by later
    queries — a SIGKILL mid-append can at worst lose the record being
    written.  A {!Lockfile} on [store.ppck.lock] enforces one writer
    per directory (stale locks from dead owners are broken
    automatically).

    [ppcache serve] arms one store process-wide ({!set_active}) and
    keys everything by {!Core.Context.fingerprint}-derived strings:

    - ["model"]    — fitted cache models ({!Nmcache_fit.Fitted_cache.t}),
                     so a restarted server never re-characterises a
                     cache it has seen under any budget;
    - ["curve"]    — memoised miss-rate curves;
    - ["response"] — rendered query results, so a warm query answers in
                     microseconds without touching the numeric stack.

    Values travel through [Marshal]: a lookup must deserialise at the
    type that was stored, which the namespace discipline guarantees —
    one namespace, one value type.  All operations are domain-safe. *)

type t

val open_ : dir:string -> t
(** Open (creating [dir] as needed) and replay the store at
    [dir/store.ppck], truncating any corrupt tail.  Raises
    {!Lockfile.Locked} when another live process holds the directory.
    Counters: [store.replayed], [store.dropped]. *)

val close : t -> unit
(** Flush, close and release the writer lock.  Idempotent. *)

val flush : t -> unit
(** Force buffered appends to disk (appends already flush per record;
    this is the belt-and-braces call on graceful drain). *)

val lookup : t -> ns:string -> key:string -> 'a option
(** The stored value for [(ns, key)], if present — counted under
    [store.hits]; misses under [store.misses].  Unsafe at the wrong
    type, like [Marshal]; respect the namespace discipline. *)

val add : t -> ns:string -> key:string -> 'a -> unit
(** Persist [(ns, key) -> value] (marshalled, CRC-guarded, flushed)
    unless the key is already present — first write wins, so replayed
    and recomputed values can never fight.  Counted under
    [store.appended]. *)

val mem : t -> ns:string -> key:string -> bool

val keys : t -> ns:string -> string list
(** Every key stored under [ns], sorted — the nearest-neighbour index
    the degraded-answer path scans.  Deterministic for a deterministic
    request history. *)

val entries : t -> int
val replayed : t -> int
val appended : t -> int
val served : t -> int
val dropped_tail : t -> bool
val dir : t -> string
val path : t -> string

val bytes : t -> int
(** Current on-disk size of the journal file in bytes. *)

(* -- the process-wide active store ---------------------------------- *)

val set_active : t option -> unit
val active : unit -> t option

(* -- exposed for tests ----------------------------------------------- *)

val magic : string
(** ["PPSTOR01"]. *)

val store_name : string
(** ["store.ppck"]. *)
