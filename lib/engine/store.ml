(* Persistent cross-run model store (see the .mli for the contract).

   The record format is the checkpoint journal's —

     [klen:u32le] [key bytes] [vlen:u32le] [value bytes] [crc:u32le]

   — under its own magic so a store can never be mistaken for (or
   appended onto) a run checkpoint.  Keys carry their namespace inline
   as "<ns>\x00<key>": one flat table, namespaced lookups, and the
   replay path stays byte-compatible with the checkpoint reader. *)

type t = {
  dir : string;
  path : string;
  file_lock : Lockfile.t;
  mutable oc : out_channel option;
  lock : Mutex.t;
  table : (string, string) Hashtbl.t; (* "<ns>\x00<key>" -> marshalled value *)
  replayed : int;
  mutable served : int;
  mutable appended : int;
  dropped : bool;
}

let magic = "PPSTOR01"
let store_name = "store.ppck"
let max_key_len = 1_000_000
let max_value_len = 256_000_000

let full_key ~ns ~key =
  if String.contains ns '\x00' then invalid_arg "Store: namespace contains NUL";
  ns ^ "\x00" ^ key

(* --- binary plumbing (mirrors Checkpoint's record format) ----------- *)

let u32_to_bytes n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let read_u32 ic =
  let b = Bytes.create 4 in
  really_input ic b 0 4;
  Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF

let read_string ic n =
  let b = Bytes.create n in
  really_input ic b 0 n;
  Bytes.unsafe_to_string b

let record_crc ~key ~value =
  (* CRC over key ^ value, identical to the checkpoint record CRC *)
  Int32.to_int (Checkpoint.crc32 (key ^ value)) land 0xFFFFFFFF

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let replay_channel ic table =
  let good_end = ref (String.length magic) in
  (try
     while true do
       let klen = read_u32 ic in
       if klen < 1 || klen > max_key_len then raise Exit;
       let key = read_string ic klen in
       let vlen = read_u32 ic in
       if vlen < 0 || vlen > max_value_len then raise Exit;
       let value = read_string ic vlen in
       let crc = read_u32 ic in
       if record_crc ~key ~value <> crc then raise Exit;
       Hashtbl.replace table key value;
       good_end := pos_in ic
     done
   with End_of_file | Exit -> ());
  !good_end

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

(* --- lifecycle ------------------------------------------------------ *)

let open_ ~dir =
  mkdir_p dir;
  let path = Filename.concat dir store_name in
  let file_lock = Lockfile.acquire ~path:(path ^ ".lock") in
  let body () =
    let table = Hashtbl.create 256 in
    let dropped = ref false in
    let fresh = ref true in
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      let good_end =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let head =
              if size >= String.length magic then read_string ic (String.length magic)
              else ""
            in
            if String.equal head magic then replay_channel ic table else 0)
      in
      if good_end > 0 then begin
        fresh := false;
        if good_end < size then begin
          dropped := true;
          truncate_file path good_end
        end
      end
    end;
    let oc =
      if !fresh then begin
        let oc = open_out_bin path in
        output_string oc magic;
        flush oc;
        oc
      end
      else open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
    in
    let replayed = Hashtbl.length table in
    if replayed > 0 then Metrics.incr ~by:replayed "store.replayed";
    if !dropped then Metrics.incr "store.dropped";
    {
      dir;
      path;
      file_lock;
      oc = Some oc;
      lock = Mutex.create ();
      table;
      replayed;
      served = 0;
      appended = 0;
      dropped = !dropped;
    }
  in
  match body () with
  | t -> t
  | exception e ->
    Lockfile.release file_lock;
    raise e

let close t =
  Mutex.protect t.lock (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        flush oc;
        close_out oc);
  Lockfile.release t.file_lock

let flush t =
  Mutex.protect t.lock (fun () -> Option.iter Stdlib.flush t.oc)

(* --- access --------------------------------------------------------- *)

let lookup : type a. t -> ns:string -> key:string -> a option =
 fun t ~ns ~key ->
  let k = full_key ~ns ~key in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table k) with
  | None ->
    Metrics.incr "store.misses";
    None
  | Some v ->
    Mutex.protect t.lock (fun () -> t.served <- t.served + 1);
    Metrics.incr "store.hits";
    Some (Marshal.from_string v 0)

let add t ~ns ~key v =
  let k = full_key ~ns ~key in
  let value = Marshal.to_string v [] in
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.table k) then begin
        Hashtbl.replace t.table k value;
        match t.oc with
        | None -> ()
        | Some oc ->
          output_string oc (u32_to_bytes (String.length k));
          output_string oc k;
          output_string oc (u32_to_bytes (String.length value));
          output_string oc value;
          output_string oc (u32_to_bytes (record_crc ~key:k ~value));
          (* flush per record: a SIGKILL loses at most the half-written
             tail, which the next open truncates *)
          Stdlib.flush oc;
          t.appended <- t.appended + 1;
          Metrics.incr "store.appended"
      end)

let mem t ~ns ~key =
  let k = full_key ~ns ~key in
  Mutex.protect t.lock (fun () -> Hashtbl.mem t.table k)

let keys t ~ns =
  let prefix = ns ^ "\x00" in
  let plen = String.length prefix in
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun k _ acc ->
          if String.length k >= plen && String.sub k 0 plen = prefix then
            String.sub k plen (String.length k - plen) :: acc
          else acc)
        t.table [])
  |> List.sort String.compare

let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let replayed t = t.replayed
let appended t = Mutex.protect t.lock (fun () -> t.appended)
let served t = Mutex.protect t.lock (fun () -> t.served)
let dropped_tail t = t.dropped
let dir t = t.dir
let path t = t.path

let bytes t =
  Mutex.protect t.lock (fun () -> Option.iter Stdlib.flush t.oc);
  try (Unix.stat t.path).Unix.st_size with Unix.Unix_error _ -> 0

(* --- the process-wide active store ---------------------------------- *)

let active_state : t option Atomic.t = Atomic.make None
let set_active s = Atomic.set active_state s
let active () = Atomic.get active_state
