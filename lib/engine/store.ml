(* Persistent cross-run model store (see the .mli for the contract).

   The record format is the checkpoint journal's —

     [klen:u32le] [key bytes] [vlen:u32le] [value bytes] [crc:u32le]

   — under its own magic so a store can never be mistaken for (or
   appended onto) a run checkpoint.  Keys carry their namespace inline
   as "<ns>\x00<key>": one flat table, namespaced lookups, and the
   replay path stays byte-compatible with the checkpoint reader.

   Two magics share the format: PPSTOR01 is an append-grown journal,
   PPSTOR02 a compacted segment (every key exactly once).  Both are
   append-able after open; compaction rewrites live records into a
   fresh PPSTOR02 via tmp+rename, so the old segment stays
   authoritative until one atomic instruction. *)

type t = {
  dir : string;
  path : string;
  file_lock : Lockfile.t;
  mutable oc : out_channel option;
  lock : Mutex.t;
  table : (string, string) Hashtbl.t; (* "<ns>\x00<key>" -> marshalled value *)
  replayed : int;
  mutable served : int;
  mutable appended : int;
  mutable dropped : bool;
  mutable version : int; (* 1 = PPSTOR01, 2 = PPSTOR02 *)
  mutable live_bytes : int; (* record bytes (excl. magic) of live records *)
  mutable dead_records : int; (* on-disk duplicates shadowed by an earlier write *)
  mutable dead_bytes : int;
}

let magic = "PPSTOR01"
let magic_compacted = "PPSTOR02"
let store_name = "store.ppck"
let max_key_len = 1_000_000
let max_value_len = 256_000_000

let full_key ~ns ~key =
  if String.contains ns '\x00' then invalid_arg "Store: namespace contains NUL";
  ns ^ "\x00" ^ key

(* --- binary plumbing (mirrors Checkpoint's record format) ----------- *)

let u32_to_bytes n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let read_u32 ic =
  let b = Bytes.create 4 in
  really_input ic b 0 4;
  Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF

let read_string ic n =
  let b = Bytes.create n in
  really_input ic b 0 n;
  Bytes.unsafe_to_string b

let record_crc ~key ~value =
  (* CRC over key ^ value, identical to the checkpoint record CRC *)
  Int32.to_int (Checkpoint.crc32 (key ^ value)) land 0xFFFFFFFF

(* [klen][key][vlen][value][crc] *)
let record_size ~key ~value = 12 + String.length key + String.length value

let encode_record ~ns ~key ~value =
  let k = full_key ~ns ~key in
  String.concat ""
    [
      u32_to_bytes (String.length k);
      k;
      u32_to_bytes (String.length value);
      value;
      u32_to_bytes (record_crc ~key:k ~value);
    ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* First-write-wins replay, mirroring [add]: a duplicate key on disk is
   a *dead* record — it can never be served — and is what compaction
   reclaims.  Returns the end of the last good record plus live/dead
   accounting. *)
let replay_channel ic table =
  let good_end = ref (String.length magic) in
  let live_bytes = ref 0 in
  let dead_records = ref 0 in
  let dead_bytes = ref 0 in
  (try
     while true do
       let klen = read_u32 ic in
       if klen < 1 || klen > max_key_len then raise Exit;
       let key = read_string ic klen in
       let vlen = read_u32 ic in
       if vlen < 0 || vlen > max_value_len then raise Exit;
       let value = read_string ic vlen in
       let crc = read_u32 ic in
       if record_crc ~key ~value <> crc then raise Exit;
       if Hashtbl.mem table key then begin
         incr dead_records;
         dead_bytes := !dead_bytes + record_size ~key ~value
       end
       else begin
         Hashtbl.replace table key value;
         live_bytes := !live_bytes + record_size ~key ~value
       end;
       good_end := pos_in ic
     done
   with End_of_file | Exit -> ());
  (!good_end, !live_bytes, !dead_records, !dead_bytes)

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

(* --- lifecycle ------------------------------------------------------ *)

let open_ ~dir =
  mkdir_p dir;
  let path = Filename.concat dir store_name in
  let file_lock = Lockfile.acquire ~path:(path ^ ".lock") in
  let body () =
    (* a leftover .tmp is an interrupted compaction that never reached
       its rename: the old segment is authoritative, discard the tmp *)
    let tmp = path ^ ".tmp" in
    if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ());
    let table = Hashtbl.create 256 in
    let dropped = ref false in
    let fresh = ref true in
    let version = ref 1 in
    let live_bytes = ref 0 in
    let dead_records = ref 0 in
    let dead_bytes = ref 0 in
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      let good_end =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let head =
              if size >= String.length magic then read_string ic (String.length magic)
              else ""
            in
            if String.equal head magic || String.equal head magic_compacted then begin
              if String.equal head magic_compacted then version := 2;
              let good_end, live, dead_n, dead_b = replay_channel ic table in
              live_bytes := live;
              dead_records := dead_n;
              dead_bytes := dead_b;
              good_end
            end
            else 0)
      in
      if good_end > 0 then begin
        fresh := false;
        if good_end < size then begin
          dropped := true;
          truncate_file path good_end
        end
      end
    end;
    let oc =
      if !fresh then begin
        let oc = open_out_bin path in
        output_string oc magic;
        flush oc;
        version := 1;
        oc
      end
      else open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
    in
    let replayed = Hashtbl.length table in
    if replayed > 0 then Metrics.incr ~by:replayed "store.replayed";
    if !dropped then Metrics.incr "store.dropped";
    {
      dir;
      path;
      file_lock;
      oc = Some oc;
      lock = Mutex.create ();
      table;
      replayed;
      served = 0;
      appended = 0;
      dropped = !dropped;
      version = !version;
      live_bytes = !live_bytes;
      dead_records = !dead_records;
      dead_bytes = !dead_bytes;
    }
  in
  match body () with
  | t -> t
  | exception e ->
    Lockfile.release file_lock;
    raise e

let close t =
  Mutex.protect t.lock (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        flush oc;
        close_out oc);
  Lockfile.release t.file_lock

let flush t =
  Mutex.protect t.lock (fun () -> Option.iter Stdlib.flush t.oc)

(* --- access --------------------------------------------------------- *)

let lookup : type a. t -> ns:string -> key:string -> a option =
 fun t ~ns ~key ->
  let k = full_key ~ns ~key in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table k) with
  | None ->
    Metrics.incr "store.misses";
    None
  | Some v ->
    Mutex.protect t.lock (fun () -> t.served <- t.served + 1);
    Metrics.incr "store.hits";
    Some (Marshal.from_string v 0)

let add t ~ns ~key v =
  let k = full_key ~ns ~key in
  let value = Marshal.to_string v [] in
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.table k) then begin
        Hashtbl.replace t.table k value;
        match t.oc with
        | None -> ()
        | Some oc ->
          output_string oc (u32_to_bytes (String.length k));
          output_string oc k;
          output_string oc (u32_to_bytes (String.length value));
          output_string oc value;
          output_string oc (u32_to_bytes (record_crc ~key:k ~value));
          (* flush per record: a SIGKILL loses at most the half-written
             tail, which the next open truncates *)
          Stdlib.flush oc;
          t.appended <- t.appended + 1;
          t.live_bytes <- t.live_bytes + record_size ~key:k ~value;
          Metrics.incr "store.appended"
      end)

let mem t ~ns ~key =
  let k = full_key ~ns ~key in
  Mutex.protect t.lock (fun () -> Hashtbl.mem t.table k)

let keys t ~ns =
  let prefix = ns ^ "\x00" in
  let plen = String.length prefix in
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun k _ acc ->
          if String.length k >= plen && String.sub k 0 plen = prefix then
            String.sub k plen (String.length k - plen) :: acc
          else acc)
        t.table [])
  |> List.sort String.compare

let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let replayed t = t.replayed
let appended t = Mutex.protect t.lock (fun () -> t.appended)
let served t = Mutex.protect t.lock (fun () -> t.served)
let dropped_tail t = t.dropped
let dir t = t.dir
let path t = t.path
let segment_version t = Mutex.protect t.lock (fun () -> t.version)
let live_bytes t = Mutex.protect t.lock (fun () -> t.live_bytes)
let dead_records t = Mutex.protect t.lock (fun () -> t.dead_records)
let dead_bytes t = Mutex.protect t.lock (fun () -> t.dead_bytes)

let bytes t =
  Mutex.protect t.lock (fun () -> Option.iter Stdlib.flush t.oc);
  try (Unix.stat t.path).Unix.st_size with Unix.Unix_error _ -> 0

(* --- compaction ----------------------------------------------------- *)

type compact_stats = {
  live : int;
  reclaimed_records : int;
  reclaimed_bytes : int;
  before_bytes : int;
  after_bytes : int;
}

(* Crash-ordering argument (also in EXPERIMENTS.md): the old segment at
   [t.path] is authoritative until the [Unix.rename] — the single
   atomic commit point.  Every step before it only creates/extends
   [t.path ^ ".tmp"], which the next [open_] discards; the tmp is
   fsynced before the rename, so a crash immediately after it can never
   expose a partially-written segment under the real name.  A SIGKILL
   at any [on_step] (or anywhere between) therefore leaves either the
   complete old segment or the complete new one.

   [on_step] is the chaos-test seam: called with 0 before the tmp is
   created, [i] after the i-th live record is written, [live+1] after
   the fsync (just before the rename), and [live+2] after the rename
   (before the append channel reopens). *)
let compact ?(on_step = fun (_ : int) -> ()) t =
  Mutex.protect t.lock (fun () ->
      (match t.oc with
      | None -> invalid_arg "Store.compact: store is closed"
      | Some oc ->
        Stdlib.flush oc;
        close_out oc;
        t.oc <- None);
      let before_bytes =
        try (Unix.stat t.path).Unix.st_size with Unix.Unix_error _ -> 0
      in
      on_step 0;
      let tmp = t.path ^ ".tmp" in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      let toc = Unix.out_channel_of_descr fd in
      output_string toc magic_compacted;
      (* deterministic record order: sorted keys *)
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort String.compare
      in
      let live_bytes = ref 0 in
      List.iteri
        (fun i k ->
          let value = Hashtbl.find t.table k in
          output_string toc (u32_to_bytes (String.length k));
          output_string toc k;
          output_string toc (u32_to_bytes (String.length value));
          output_string toc value;
          output_string toc (u32_to_bytes (record_crc ~key:k ~value));
          live_bytes := !live_bytes + record_size ~key:k ~value;
          on_step (i + 1))
        keys;
      Stdlib.flush toc;
      Unix.fsync fd;
      close_out toc;
      let live = List.length keys in
      on_step (live + 1);
      Unix.rename tmp t.path;
      (* best-effort directory fsync so the rename itself is durable *)
      (match Unix.openfile t.dir [ Unix.O_RDONLY ] 0 with
      | dfd ->
        Fun.protect
          ~finally:(fun () -> Unix.close dfd)
          (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      on_step (live + 2);
      t.oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path);
      let reclaimed_records = t.dead_records in
      let reclaimed_bytes = t.dead_bytes in
      t.version <- 2;
      t.dead_records <- 0;
      t.dead_bytes <- 0;
      t.live_bytes <- !live_bytes;
      let after_bytes =
        try (Unix.stat t.path).Unix.st_size with Unix.Unix_error _ -> 0
      in
      Metrics.incr "store.compactions";
      if reclaimed_bytes > 0 then Metrics.incr ~by:reclaimed_bytes "store.reclaimed_bytes";
      { live; reclaimed_records; reclaimed_bytes; before_bytes; after_bytes })

(* --- the process-wide active store ---------------------------------- *)

let active_state : t option Atomic.t = Atomic.make None
let set_active s = Atomic.set active_state s
let active () = Atomic.get active_state
