(** Durable checkpoint journal: crash a sweep, resume it, lose nothing.

    An append-only binary journal of completed sweep slots, one file
    per checkpoint directory ([DIR/journal.ppck]).  Each record is a
    [(key, marshalled value)] pair guarded by a CRC-32; replay at
    {!open_} is corruption-tolerant — records are read until the first
    truncated or CRC-mismatching one, the file is truncated back to the
    last good record, and the lost tail is simply recomputed.  A crash
    mid-append can therefore cost at most the record being written,
    and a corrupt slot is never served.

    {!Sweep} integrates the journal transparently: when a journal is
    armed ({!set_active}, via [ppcache run --checkpoint DIR]) every
    *keyed* task slot ({!Task.make}'s [key]) is looked up before being
    computed and stored after.  Because slot keys encode every input
    the result depends on, and results are served in slot order
    regardless of where they came from, a resumed run's output is
    byte-identical to an uninterrupted one at any [--jobs].

    Values travel through [Marshal], so a lookup must deserialise at
    the type that was stored; {!Sweep} enforces this by namespacing
    keys with the task name ([<task>\x00<slot key>] — one task, one
    result type).  All operations are domain-safe. *)

type t

val open_ : dir:string -> resume:bool -> t
(** Open (creating [dir] as needed) the journal at [dir/journal.ppck].
    With [resume = true] an existing journal is replayed (tolerantly —
    see above) and extended; with [resume = false], or when the file is
    missing or has a foreign header, a fresh journal is started.
    Single-writer: an advisory {!Lockfile} on [journal.ppck.lock] is
    held until {!close}, so a second process (or handle) armed on the
    same directory raises {!Lockfile.Locked} instead of silently
    interleaving records; a crashed owner's stale lock is broken
    automatically.  Counters: [checkpoint.replayed] (records served
    back from disk), [checkpoint.dropped] (a corrupt tail was
    truncated). *)

val close : t -> unit
(** Flush and close the journal file and release the writer lock;
    later {!store}s still populate the in-memory table but no longer
    persist. *)

val lookup : t -> key:string -> 'a option
(** The journaled value for [key], if present — counted under
    [checkpoint.served].  Unsafe at the wrong type, like [Marshal];
    use namespaced keys. *)

val store : t -> key:string -> 'a -> unit
(** Journal [key -> value] (marshalled, CRC-guarded, flushed) unless
    the key is already present.  Counted under [checkpoint.appended]. *)

val mem : t -> key:string -> bool
val entries : t -> int

val dir : t -> string
val path : t -> string

val replayed : t -> int
(** Records recovered from disk at {!open_}. *)

val served : t -> int
(** Lookups answered from the table since {!open_}. *)

val appended : t -> int
(** Fresh records written since {!open_}. *)

val dropped_tail : t -> bool
(** Whether {!open_} had to truncate a corrupt or half-written tail. *)

(* -- the process-wide active journal -------------------------------- *)

val set_active : t option -> unit
(** Arm (or disarm) the journal {!Sweep} consults for keyed slots. *)

val active : unit -> t option

(* -- exposed for tests ----------------------------------------------- *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3, reflected, pre/post-conditioned) — the record
    checksum.  [crc32 "123456789" = 0xCBF43926l]. *)

val magic : string
(** The 8-byte journal header, ["PPCKPT01"]. *)

val journal_name : string
(** ["journal.ppck"]. *)
