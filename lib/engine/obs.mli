(** Machine-readable run reports: assembly and file output for the
    observability layer.

    Pulls the three collectors together — {!Span} (span tree),
    {!Metrics} (counters / gauges / histograms) and {!Trace} (flat
    stage table + memo counters) — into versioned JSON documents.
    [ppcache … --trace-json F --metrics-json F] and the bench
    [BENCH_<label>.json] report are thin wrappers over this module. *)

val metrics_schema_version : int
(** Bumped whenever a field is added or reshaped (policy in README
    "Robustness & fault injection"); v2 added the ["faults"] list, v3
    the ["resilience"] section, v4 the ["resource"] section. *)

val faults_schema_version : int
(** v2 added the ["resilience"] section. *)

val verify_schema_version : int
(** Schema of the verification report written by [ppcache verify
    --report-json]. *)

val metrics_report : unit -> Json.t
(** [{ "schema_version"; "metrics": {counters,gauges,histograms};
    "stages": [{name,calls,tasks,busy_s,wall_s}];
    "memo": [{name,hits,misses,hit_rate}];
    "faults": [{kind,stage,detail}]; "resilience": {..};
    "resource": {..} }] — stages and memo tables mirror
    {!Trace.summary} in machine-readable form; faults are the {!Fault}
    log in canonical order; resource is {!Resource.summary_json}. *)

val faults_report : unit -> Json.t
(** [{ "schema_version"; "faults": [{kind,stage,detail}] }] — the
    standalone fault report behind [ppcache run --faults-json]. *)

val verify_report : checks:Json.t -> Json.t
(** [{ "schema_version"; "checks"; "faults" }] — wraps a verification
    subsystem's rendered check list with the report version and the
    fault log, so a crashed check's typed fault travels in the same
    document as its [crashed] status. *)

val stages_json : unit -> Json.t
val memo_json : unit -> Json.t

val faults_json : unit -> Json.t
(** Recorded faults sorted by {!Fault.compare}, so the report bytes do
    not depend on domain scheduling. *)

val resilience_json : unit -> Json.t
(** [{ "retries": {attempts,recovered,exhausted}; "checkpoint":
    {replayed,served,appended,dropped_tails}; "deadline": {fired} }] —
    the resilience layer's counters, embedded in both the metrics and
    fault reports and in the bench report. *)

val write_text : path:string -> string -> unit
(** Atomic file write: the document goes to [path ^ ".tmp"], then a
    rename replaces [path] in one step — a killed run can leave a
    stale [.tmp] behind but never a truncated report. *)

val write_json : path:string -> Json.t -> unit
(** Pretty-printed, trailing newline; atomic via {!write_text}. *)

val write_metrics : path:string -> unit
(** {!metrics_report} to [path]. *)

val write_faults : path:string -> unit
(** {!faults_report} to [path]. *)

val write_trace : path:string -> unit
(** {!Span.to_chrome_json} to [path] — open in Perfetto
    ([ui.perfetto.dev]) or [chrome://tracing]. *)

val write_openmetrics : path:string -> unit
(** {!Metrics.to_openmetrics} to [path] — the Prometheus text
    exposition snapshot behind [--metrics-prom]. *)
