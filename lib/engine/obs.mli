(** Machine-readable run reports: assembly and file output for the
    observability layer.

    Pulls the three collectors together — {!Span} (span tree),
    {!Metrics} (counters / gauges / histograms) and {!Trace} (flat
    stage table + memo counters) — into versioned JSON documents.
    [ppcache … --trace-json F --metrics-json F] and the bench
    [BENCH_<label>.json] report are thin wrappers over this module. *)

val metrics_schema_version : int

val metrics_report : unit -> Json.t
(** [{ "schema_version"; "metrics": {counters,gauges,histograms};
    "stages": [{name,calls,tasks,busy_s,wall_s}];
    "memo": [{name,hits,misses,hit_rate}] }] — stages and memo tables
    mirror {!Trace.summary} in machine-readable form. *)

val stages_json : unit -> Json.t
val memo_json : unit -> Json.t

val write_json : path:string -> Json.t -> unit
(** Pretty-printed, trailing newline. *)

val write_metrics : path:string -> unit
(** {!metrics_report} to [path]. *)

val write_trace : path:string -> unit
(** {!Span.to_chrome_json} to [path] — open in Perfetto
    ([ui.perfetto.dev]) or [chrome://tracing]. *)
