(* Resource accounting: GC and wall-clock samples at span boundaries
   plus a process-level summary for the Obs reports.

   Everything here reads [Gc.quick_stat] — the cheap counters-only
   variant that never walks the heap — so sampling is safe at span
   granularity.  On OCaml 5 the allocation counters (minor_words,
   promoted_words, major_words) are maintained per domain, so a span's
   delta reports the words allocated by the domain that ran it; the
   heap-size fields describe the shared major heap.

   The runtime does not expose time spent inside the collector, so the
   summary reports collection *counts* (minor, major, forced,
   compactions) and heap growth instead — enough to spot allocation
   pressure and GC-bound phases from a metrics report alone. *)

type sample = {
  wall : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  forced_major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let sample () =
  let s = Gc.quick_stat () in
  {
    wall = Unix.gettimeofday ();
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    forced_major_collections = s.Gc.forced_major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

(* process baseline, captured when the engine library is initialised *)
let start = sample ()

type delta = {
  wall_s : float;
  d_minor_words : float;
  d_major_words : float;
  d_major_collections : int;
}

let delta ~before ~after =
  {
    wall_s = after.wall -. before.wall;
    d_minor_words = after.minor_words -. before.minor_words;
    d_major_words = after.major_words -. before.major_words;
    d_major_collections = after.major_collections - before.major_collections;
  }

(* the attribute triple every traced span carries; values are deltas
   over the span's own execution *)
let span_attrs ~before ~after =
  let d = delta ~before ~after in
  [
    ("minor_words", Json.Float d.d_minor_words);
    ("major_words", Json.Float d.d_major_words);
    ("major_collections", Json.Int d.d_major_collections);
  ]

let summary_json () =
  let now = sample () in
  Json.Obj
    [
      ("wall_s", Json.Float (now.wall -. start.wall));
      ("minor_words", Json.Float now.minor_words);
      ("promoted_words", Json.Float now.promoted_words);
      ("major_words", Json.Float now.major_words);
      (* total fresh allocation: minor + direct-to-major, without
         double-counting promotions *)
      ( "allocated_words",
        Json.Float (now.minor_words +. now.major_words -. now.promoted_words) );
      ("minor_collections", Json.Int now.minor_collections);
      ("major_collections", Json.Int now.major_collections);
      ("forced_major_collections", Json.Int now.forced_major_collections);
      ("compactions", Json.Int now.compactions);
      ("heap_words", Json.Int now.heap_words);
      ("peak_heap_words", Json.Int now.top_heap_words);
    ]
