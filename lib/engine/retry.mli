(** Per-stage retry policies with deterministic, seeded backoff.

    Transient faults — a {!Faultpoint} chaos hit, an LM fit stalled by
    an unlucky start — deserve another attempt at the boundary that
    understands them ([fit.*], [anneal], [simulate]) before being
    recorded as casualties.  Chaos runs must stay reproducible, so the
    whole decision path is pure: retryable kinds and attempt counts
    come from the policy, and the backoff schedule — exponential with
    jitter — is a function of [(seed, stage, key, attempt)] through the
    {!Faultpoint.draw} hash.  No wall clock is ever read to *decide*
    anything; only the sleep itself waits, and it is injectable so
    tests run instantly. *)

type policy = {
  max_attempts : int;      (** total attempts, >= 1 (1 = no retry) *)
  base_delay_s : float;    (** backoff before attempt 2 *)
  max_delay_s : float;     (** cap on the exponential schedule *)
  jitter : float;          (** relative jitter j: delay scaled by [1±j) *)
  retry_kinds : Fault.kind list;  (** kinds worth a second try *)
}

val default_policy : policy
(** 3 attempts, 2 ms base doubling to a 50 ms cap, ±50% jitter,
    retrying [Injected] and [Fit_diverged] — everything else
    (singular systems, domain errors, crashes, deadlines) is
    deterministic and fails identically on every attempt. *)

val policy : unit -> policy
(** The process-wide policy (initially {!default_policy}). *)

val set_policy : policy -> unit
(** Raises [Invalid_argument] when [max_attempts < 1]. *)

val set_max_attempts : int -> unit
(** Override just the attempt budget ([ppcache run --retries N]);
    [1] disables retries entirely. *)

val reset : unit -> unit
(** Back to {!default_policy}. *)

val backoff_s :
  policy -> seed:int64 -> stage:string -> key:string -> attempt:int -> float
(** The delay slept after a failed [attempt] (1-based): [base·2^(a-1)]
    capped at [max_delay_s], scaled by the deterministic jitter drawn
    from [(seed, "retry."^stage, key#attempt)].  A pure function —
    property-tested as such. *)

val set_sleep : (float -> unit) -> unit
(** Replace the sleeper (default [Unix.sleepf]); tests install [ignore]. *)

val run :
  ?policy:policy ->
  stage:string ->
  key:string ->
  (attempt:int -> last:bool -> 'a) ->
  'a
(** [run ~stage ~key f] evaluates [f ~attempt:1 ~last] and, each time it
    raises a {!Fault.Fault} of a retryable kind with attempts left,
    sleeps the backoff and re-evaluates with the next [attempt].
    [last] tells the kernel it is on its final attempt — the fitter
    uses it to degrade gracefully (record-and-return) instead of
    raising.  Non-retryable faults and non-fault exceptions propagate
    immediately.  Counters: [retry.attempts], [retry.recovered],
    [retry.exhausted] (plus [.<stage>] variants). *)
