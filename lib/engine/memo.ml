type 'v entry = Done of 'v | Pending

type 'v t = {
  name : string;
  table : (string, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  settled : Condition.t;
}

let create ~name ?(size = 64) () =
  {
    name;
    table = Hashtbl.create size;
    lock = Mutex.create ();
    settled = Condition.create ();
  }

let name t = t.name

let find_or_compute t key f =
  Mutex.lock t.lock;
  let rec await () =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) ->
      Mutex.unlock t.lock;
      Trace.cache_hit t.name;
      v
    | Some Pending ->
      (* another domain is already computing this key: wait for it
         rather than duplicating the work *)
      Condition.wait t.settled t.lock;
      await ()
    | None ->
      Hashtbl.replace t.table key Pending;
      Mutex.unlock t.lock;
      Trace.cache_miss t.name;
      (match f () with
      | v ->
        Mutex.lock t.lock;
        Hashtbl.replace t.table key (Done v);
        Condition.broadcast t.settled;
        Mutex.unlock t.lock;
        v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (* drop the pending marker so a waiter can retry the compute *)
        Mutex.lock t.lock;
        Hashtbl.remove t.table key;
        Condition.broadcast t.settled;
        Mutex.unlock t.lock;
        Printexc.raise_with_backtrace e bt)
  in
  await ()

let clear t = Mutex.protect t.lock (fun () -> Hashtbl.reset t.table)

let length t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun _ entry n -> match entry with Done _ -> n + 1 | Pending -> n)
        t.table 0)

let stats t = Trace.cache_stats t.name
