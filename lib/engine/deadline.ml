(* Cooperative per-kernel budgets.

   A deadline is a per-domain token (DLS, so spawned pool workers each
   carry their own) holding an absolute expiry instant.  Long kernels
   poll it at loop seams — LM iterations, anneal steps, cachesim
   batches — and an expired poll raises a typed [Timed_out] fault,
   which the sweep's result boundary settles into the kernel's own
   slot.  Cancellation is cooperative by design: OCaml domains cannot
   be killed safely, so the guarantee is "a runaway kernel that polls
   becomes a fault and the pool drains", not preemption.

   Only the *decision to arm* is configuration; whether a poll fires
   does consult the wall clock, so deadline faults are inherently
   timing-dependent.  Deterministic tests therefore use a zero budget
   (first poll always fires) or no budget at all; the fault's detail
   string contains only the configured budget, never the elapsed time,
   so rendered output stays stable when a deadline does fire. *)

type state = {
  mutable armed : bool;
  mutable expires_at : float; (* Unix.gettimeofday instant *)
  mutable budget_s : float;
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { armed = false; expires_at = 0.0; budget_s = 0.0 })

(* process-wide default budget, armed around every sweep slot (CLI
   --deadline); None means kernels run unbounded *)
let default_budget : float option Atomic.t = Atomic.make None

let set_default = function
  | Some b when not (b >= 0.0) ->
    invalid_arg (Printf.sprintf "Deadline.set_default: negative budget %g" b)
  | v -> Atomic.set default_budget v

let default () = Atomic.get default_budget
let armed () = (Domain.DLS.get dls).armed

let with_budget ~budget_s f =
  if not (budget_s >= 0.0) then
    invalid_arg (Printf.sprintf "Deadline.with_budget: negative budget %g" budget_s);
  let s = Domain.DLS.get dls in
  let prev_armed = s.armed and prev_exp = s.expires_at and prev_b = s.budget_s in
  s.armed <- true;
  s.expires_at <- Unix.gettimeofday () +. budget_s;
  s.budget_s <- budget_s;
  Fun.protect
    ~finally:(fun () ->
      s.armed <- prev_armed;
      s.expires_at <- prev_exp;
      s.budget_s <- prev_b)
    f

let with_root f =
  (* arm the process default at a sweep-slot root, unless an outer
     kernel on this domain already armed a budget — nested sweeps run
     sequentially on the worker's own domain (see Pool), so the DLS
     token naturally covers them and must not be reset *)
  match Atomic.get default_budget with
  | Some b when not (Domain.DLS.get dls).armed -> with_budget ~budget_s:b f
  | _ -> f ()

(* inclusive comparison: a zero budget must fire on the very first
   poll even when it lands in the same clock tick as arming *)
let expired () =
  let s = Domain.DLS.get dls in
  s.armed && Unix.gettimeofday () >= s.expires_at

let poll ~stage =
  let s = Domain.DLS.get dls in
  if s.armed && Unix.gettimeofday () >= s.expires_at then begin
    Metrics.incr "deadline.fired";
    Fault.error ~kind:Fault.Timed_out ~stage
      (Printf.sprintf "exceeded the %gs kernel budget" s.budget_s)
  end
