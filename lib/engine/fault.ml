type kind =
  | Fit_diverged
  | Singular_system
  | Non_finite
  | Out_of_domain
  | Injected
  | Crashed
  | Timed_out

type t = {
  kind : kind;
  stage : string;
  detail : string;
}

exception Fault of t

let kind_name = function
  | Fit_diverged -> "fit_diverged"
  | Singular_system -> "singular_system"
  | Non_finite -> "non_finite"
  | Out_of_domain -> "out_of_domain"
  | Injected -> "injected"
  | Crashed -> "crashed"
  | Timed_out -> "timed_out"

let kind_of_name = function
  | "fit_diverged" -> Some Fit_diverged
  | "singular_system" -> Some Singular_system
  | "non_finite" -> Some Non_finite
  | "out_of_domain" -> Some Out_of_domain
  | "injected" -> Some Injected
  | "crashed" -> Some Crashed
  | "timed_out" -> Some Timed_out
  | _ -> None

let make ~kind ~stage detail = { kind; stage; detail }
let error ~kind ~stage detail = raise (Fault { kind; stage; detail })

let to_string f =
  Printf.sprintf "[%s] %s: %s" (kind_name f.kind) f.stage f.detail

let () =
  Printexc.register_printer (function
    | Fault f -> Some ("Fault " ^ to_string f)
    | _ -> None)

let to_json f =
  Json.Obj
    [
      ("kind", Json.String (kind_name f.kind));
      ("stage", Json.String f.stage);
      ("detail", Json.String f.detail);
    ]

let of_json j =
  match
    ( Option.bind (Json.member "kind" j) Json.to_str,
      Option.bind (Json.member "stage" j) Json.to_str,
      Option.bind (Json.member "detail" j) Json.to_str )
  with
  | Some k, Some stage, Some detail ->
    Option.map (fun kind -> { kind; stage; detail }) (kind_of_name k)
  | _ -> None

(* classification of an escaped exception at a stage boundary; a typed
   fault passes through untouched, anything else becomes [Crashed]
   with the exception's (deterministic) rendering as detail *)
let of_exn ~stage = function
  | Fault f -> f
  | e -> { kind = Crashed; stage; detail = Printexc.to_string e }

let compare a b =
  let c = String.compare a.stage b.stage in
  if c <> 0 then c
  else
    let c = String.compare (kind_name a.kind) (kind_name b.kind) in
    if c <> 0 then c else String.compare a.detail b.detail

(* --- process-wide fault log ---------------------------------------- *)

let log : t list ref = ref []
let lock = Mutex.create ()

let record f =
  Metrics.incr "faults.recorded";
  Mutex.protect lock (fun () -> log := f :: !log)

let recorded () = Mutex.protect lock (fun () -> List.rev !log)
let reset () = Mutex.protect lock (fun () -> log := [])
