(** A deliberately small JSON value type, printer and parser.

    The observability layer (span traces, metrics reports, bench
    reports) needs machine-readable output and the test suite needs to
    parse it back; the project has no JSON dependency, so this module
    carries the ~200 lines it actually uses.  The printer emits
    compact, valid JSON (non-finite floats become [null]); the parser
    accepts anything the printer emits plus ordinary interchange JSON
    (escapes, exponents, nested containers). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val to_string_pretty : t -> string
(** Two-space indented rendering — the format written to report
    files, so they are diffable and humane to open. *)

val parse : string -> (t, string) result
(** Parse one JSON document; [Error msg] carries a character offset.
    Trailing whitespace is allowed, trailing garbage is not. *)

val parse_exn : string -> t
(** Like {!parse}; raises [Failure] on malformed input. *)

(* -- accessors (total: return [None] on shape mismatch) ------------- *)

val member : string -> t -> t option
(** Field lookup in an [Obj]. *)

val to_list : t -> t list option
val to_float : t -> float option
(** Numeric value of an [Int] or [Float]. *)

val to_int : t -> int option
val to_str : t -> string option
