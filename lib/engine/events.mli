(** Live progress events: append-only NDJSON stream ([--events FILE])
    and/or human-readable progress lines on stderr ([--progress]).

    Events never touch stdout, so the byte-identity contract for
    result output holds at any [--jobs].  Each emitted line carries a
    monotonically increasing [seq] assigned under the sink lock;
    consumers order by sequence number, not wall clock, because slot
    completion order is scheduling-dependent under parallelism.

    Off by default; a disabled {!emit} costs one atomic load. *)

val schema_version : int
(** Event stream schema version (1). *)

type event =
  | Sweep_started of { name : string; total : int }
  | Slot_done of {
      name : string;
      index : int;  (** slot index within the fan-out *)
      completed : int;
          (** slots finished in this fan-out so far, including this one *)
      total : int;
      memo_hits : int;  (** cumulative across the run, not per-slot *)
      faults : int;
      retries : int;
    }
  | Checkpoint_replayed of { dir : string; replayed : int }
  | Experiment_done of { id : string }
  | Chunk_done of {
      stream : string;  (** stream name *)
      index : int;  (** chunk index within the stream, 0-based *)
      entries : int;  (** entries in this chunk *)
    }  (** a streamed-trace chunk finished simulating *)
  | Conn_opened of { id : int }
      (** a socket connection was accepted (id is the accept serial) *)
  | Conn_closed of { id : int; requests : int }
      (** a socket connection ended, having served [requests] lines *)
  | Conn_shed of { id : int }
      (** a connection was refused at the concurrency cap: one
          [overloaded] line, then close *)

val to_json : seq:int -> event -> Json.t
(** One NDJSON line: [{"seq":N,"event":"<kind>",...}]. *)

val render : event -> string
(** Human-readable one-line form used by [--progress]. *)

val set_file : string -> unit
(** Open [path] (truncating) as the NDJSON sink. *)

val set_progress : bool -> unit
(** Enable/disable progress lines on stderr. *)

val enabled : unit -> bool
(** True when any sink is armed — guard for call sites that would do
    work (counter reads, list lengths) just to build an event. *)

val emit : event -> unit
(** Assign a sequence number and write the event to every armed sink.
    No-op when disabled. *)

val close : unit -> unit
(** Flush and close the file sink, disable progress, reset the
    sequence counter. *)
