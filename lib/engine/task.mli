(** A named pure kernel: the unit of work the engine schedules.

    Separating the kernel (input -> output, no printing, no shared
    mutable state beyond {!Memo} caches) from reporting is what lets
    {!Sweep} fan evaluations across domains while keeping artefact
    output byte-identical to a sequential run. *)

type ('a, 'b) t

val make : name:string -> ?key:('a -> string) -> ('a -> 'b) -> ('a, 'b) t
(** [name] labels the stage in {!Trace} summaries.

    [key], when given, renders a slot input to a stable string
    identifying the computation — same key, same result.  Keyed tasks
    are the unit of {!Checkpoint} journaling: {!Sweep} serves a
    journaled slot instead of recomputing it and journals fresh
    results.  Keys must be unique per distinct input and must encode
    everything the result depends on (context parameters included);
    unkeyed tasks are never journaled. *)

val name : ('a, 'b) t -> string

val kernel : ('a, 'b) t -> 'a -> 'b
(** The raw kernel, untraced. *)

val slot_key : ('a, 'b) t -> 'a -> string option
(** The checkpoint key for one slot input, if the task is keyed. *)

val run : ('a, 'b) t -> 'a -> 'b
(** One traced evaluation (a single-task stage sample). *)
