(** A named pure kernel: the unit of work the engine schedules.

    Separating the kernel (input -> output, no printing, no shared
    mutable state beyond {!Memo} caches) from reporting is what lets
    {!Sweep} fan evaluations across domains while keeping artefact
    output byte-identical to a sequential run. *)

type ('a, 'b) t

val make : name:string -> ('a -> 'b) -> ('a, 'b) t
(** [name] labels the stage in {!Trace} summaries. *)

val name : ('a, 'b) t -> string

val kernel : ('a, 'b) t -> 'a -> 'b
(** The raw kernel, untraced. *)

val run : ('a, 'b) t -> 'a -> 'b
(** One traced evaluation (a single-task stage sample). *)
