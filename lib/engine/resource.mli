(** Resource accounting: GC counters and wall clock, sampled at span
    boundaries and summarised per process.

    Built on [Gc.quick_stat] — counters only, no heap walk — so a
    sample costs nanoseconds and is safe at span granularity.  On
    OCaml 5 the allocation counters are per-domain: a span's delta
    reports the words allocated by the domain that ran it, while the
    heap-size fields describe the shared major heap.

    The OCaml runtime does not expose time spent inside the collector,
    so the process summary reports collection counts (minor, major,
    forced, compactions) and heap growth instead.  {!Span} attaches
    {!span_attrs} to every traced span; {!Obs.metrics_report} embeds
    {!summary_json} as the ["resource"] section (metrics schema v4). *)

type sample = {
  wall : float;                    (** Unix time of the sample *)
  minor_words : float;             (** cumulative, domain-local *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  forced_major_collections : int;
  compactions : int;
  heap_words : int;                (** current major heap size *)
  top_heap_words : int;            (** peak major heap size *)
}

val sample : unit -> sample

val start : sample
(** Process baseline, captured at library initialisation. *)

type delta = {
  wall_s : float;
  d_minor_words : float;
  d_major_words : float;
  d_major_collections : int;
}

val delta : before:sample -> after:sample -> delta

val span_attrs : before:sample -> after:sample -> (string * Json.t) list
(** [minor_words] / [major_words] / [major_collections] deltas — the
    attributes {!Span.with_span} appends to every traced span. *)

val summary_json : unit -> Json.t
(** Process-level summary since {!start}: wall time, cumulative
    allocation (minor / promoted / major / total), collection counts,
    current and peak heap words. *)
