(** The generic NDJSON serve loop: batched line-in/line-out request
    processing with fault isolation, bounded admission and graceful
    drain.

    The loop owns everything protocol-agnostic about [ppcache serve]:
    it reads request lines from a file descriptor (stdin or an
    accepted Unix-socket connection), gathers them into batches of at
    most [queue] lines (the bounded in-flight window — the reader
    never runs ahead of the workers, so a million-line pipe costs
    bounded memory), fans each batch across the domain pool, and
    answers without waiting for the window to fill: gathering blocks
    only for the first line of a batch, then takes whatever input is
    already available, so a lone query on an idle pipe or socket is
    answered immediately.  It
    writes one response line per request {e in request order},
    flushing per line so a killed server never leaves a torn response.
    What the lines mean is the caller's business ({!Core.Service}
    supplies the handler).

    Fault isolation is layered: the handler is expected to be total
    (it renders its own error responses), but if it nevertheless
    raises, the exception is classified by {!Fault.of_exn} at the
    request boundary and rendered by the caller's [crash_response] —
    one poisoned request can never take the loop down.

    Each handler result carries a [settle] thunk that the loop runs
    sequentially, in request order, after the batch completes — the
    deterministic seam where breaker updates and nearest-model indexes
    advance, so responses are byte-identical at any pool width.

    Drain: {!request_drain} (installed on SIGTERM/SIGINT by
    {!install_drain_signals}) makes the loop finish the in-flight
    batch, stop reading, and return with [drained = true].  A blocking
    read is interrupted by the signal (EINTR), so a drain never waits
    on input that will not come. *)

type stats = {
  requests : int;   (** lines read (including overlong rejects) *)
  responses : int;  (** lines written *)
  drained : bool;   (** the loop ended on a drain request, not EOF *)
}

type handler = line:string -> string * (unit -> unit)
(** [handler ~line] returns the response line (no trailing newline)
    and the settle thunk.  Must not block indefinitely; should not
    raise (raising is survivable but yields the generic crash
    response). *)

val max_line_bytes : int
(** Admission bound on a single request line (1 MiB).  Longer lines
    are discarded without buffering more than one chunk and answered
    with the caller's [overlong_response] — bounded memory whatever
    arrives on the wire. *)

(** {1 Bounded-memory line reader}

    The serve loop's hand-rolled reader over [Unix.read], exposed so
    other NDJSON consumers (the streaming trace engine's
    [--trace-stdin] source) share one reader with one memory bound:
    EINTR surfaces (a signal can interrupt a blocking read), lines
    longer than {!max_line_bytes} are discarded in bounded memory, and
    CRLF input is tolerated. *)

type reader

val make_reader : Unix.file_descr -> reader

type read_result =
  | Line of string  (** one complete line, newline and any CR stripped *)
  | Overlong        (** a line exceeded {!max_line_bytes}; it was discarded *)
  | Eof
  | Drained         (** a drain request interrupted the blocking read *)

val read_line : reader -> read_result

val request_drain : unit -> unit
(** Ask every serve loop in the process to finish its in-flight batch
    and stop.  Idempotent, async-signal-safe. *)

val drain_requested : unit -> bool
val reset_drain : unit -> unit

val install_drain_signals : unit -> unit
(** Route SIGTERM and SIGINT to {!request_drain}. *)

val inflight : unit -> int
(** Requests in the batch currently being processed — the health
    query's in-flight gauge. *)

val serve :
  ?queue:int ->
  pool:Pool.t ->
  handler:handler ->
  crash_response:(line:string -> Fault.t -> string) ->
  overlong_response:(unit -> string) ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit ->
  stats
(** Run the loop until EOF or drain.  [queue] (default 64, must be
    >= 1) bounds both the read-ahead and the per-batch fan-out; it is
    independent of the pool width, so batch boundaries — and
    everything settled at them — do not depend on [--jobs].  Counters:
    [serve.requests], [serve.responses], [serve.overlong]. *)

val serve_unix_socket :
  ?queue:int ->
  pool:Pool.t ->
  handler:handler ->
  crash_response:(line:string -> Fault.t -> string) ->
  overlong_response:(unit -> string) ->
  path:string ->
  unit ->
  stats
(** Listen on a Unix domain socket at [path] (replacing any stale
    socket file) and serve connections one at a time with {!serve},
    until a drain is requested.  Aggregated stats. *)
