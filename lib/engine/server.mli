(** The generic NDJSON serve loop: batched line-in/line-out request
    processing with fault isolation, bounded admission and graceful
    drain.

    The loop owns everything protocol-agnostic about [ppcache serve]:
    it reads request lines from a file descriptor (stdin or an
    accepted Unix-socket connection), gathers them into batches of at
    most [queue] lines (the bounded in-flight window — the reader
    never runs ahead of the workers, so a million-line pipe costs
    bounded memory), fans each batch across the domain pool, and
    answers without waiting for the window to fill: gathering blocks
    only for the first line of a batch, then takes whatever input is
    already available, so a lone query on an idle pipe or socket is
    answered immediately.  It
    writes one response line per request {e in request order},
    flushing per line so a killed server never leaves a torn response.
    What the lines mean is the caller's business ({!Core.Service}
    supplies the handler).

    Fault isolation is layered: the handler is expected to be total
    (it renders its own error responses), but if it nevertheless
    raises, the exception is classified by {!Fault.of_exn} at the
    request boundary and rendered by the caller's [crash_response] —
    one poisoned request can never take the loop down.

    Each handler result carries a [settle] thunk that the loop runs
    sequentially, in request order, after the batch completes — the
    deterministic seam where breaker updates and nearest-model indexes
    advance, so responses are byte-identical at any pool width.

    Drain: {!request_drain} (installed on SIGTERM/SIGINT by
    {!install_drain_signals}) makes the loop finish the in-flight
    batch, stop reading, and return with [drained = true].  A blocking
    read is interrupted by the signal (EINTR), so a drain never waits
    on input that will not come. *)

type stats = {
  requests : int;   (** lines read (including overlong rejects) *)
  responses : int;  (** lines written *)
  drained : bool;   (** the loop ended on a drain request, not EOF *)
}

type handler = line:string -> string * (unit -> unit)
(** [handler ~line] returns the response line (no trailing newline)
    and the settle thunk.  Must not block indefinitely; should not
    raise (raising is survivable but yields the generic crash
    response). *)

val max_line_bytes : int
(** Admission bound on a single request line (1 MiB).  Longer lines
    are discarded without buffering more than one chunk and answered
    with the caller's [overlong_response] — bounded memory whatever
    arrives on the wire. *)

(** {1 Bounded-memory line reader}

    The serve loop's hand-rolled reader over [Unix.read], exposed so
    other NDJSON consumers (the streaming trace engine's
    [--trace-stdin] source) share one reader with one memory bound:
    EINTR surfaces (a signal can interrupt a blocking read), lines
    longer than {!max_line_bytes} are discarded in bounded memory, and
    CRLF input is tolerated. *)

type reader

val make_reader : Unix.file_descr -> reader

type read_result =
  | Line of string  (** one complete line, newline and any CR stripped *)
  | Overlong        (** a line exceeded {!max_line_bytes}; it was discarded *)
  | Eof
  | Drained         (** a drain request interrupted the blocking read *)

val read_line : reader -> read_result

val request_drain : unit -> unit
(** Ask every serve loop in the process to finish its in-flight batch
    and stop.  Idempotent, async-signal-safe. *)

val drain_requested : unit -> bool
val reset_drain : unit -> unit

val install_drain_signals : unit -> unit
(** Route SIGTERM and SIGINT to {!request_drain}. *)

val inflight : unit -> int
(** Requests in the batches currently being processed, across every
    connection — the health query's in-flight gauge. *)

(** {1 Global admission limiter}

    Bounds the total in-flight request lines across every connection of
    a socket server.  Reservation grants as many slots as remain;
    requests beyond the grant are answered with the shed response
    instead of being buffered — overload produces explicit
    [overloaded] errors, never unbounded memory. *)

type limiter

val make_limiter : capacity:int -> limiter
(** [capacity] must be >= 1. *)

val serve :
  ?queue:int ->
  ?limiter:limiter ->
  ?shed_response:(unit -> string) ->
  ?dispatch_lock:Mutex.t ->
  pool:Pool.t ->
  handler:handler ->
  crash_response:(line:string -> Fault.t -> string) ->
  overlong_response:(unit -> string) ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit ->
  stats
(** Run the loop until EOF or drain.  [queue] (default 64, must be
    >= 1) bounds both the read-ahead and the per-batch fan-out; it is
    independent of the pool width, so batch boundaries — and
    everything settled at them — do not depend on [--jobs].

    [limiter], when given, is the shared global admission bound:
    request lines beyond the grant are answered with [shed_response]
    (counted under [serve.shed]) in request order, so the response
    stream stays line-for-line even under shed.  [dispatch_lock], when
    given, is held around each pool fan-out — connection threads share
    one domain pool, whose in-worker marker is domain-local, so
    concurrent fan-outs must be serialized.  Solo runs (no limiter, or
    a limiter with capacity >= queue and no competing connections)
    never shed, which is what keeps per-connection streams
    byte-identical to solo runs.  Counters: [serve.requests],
    [serve.responses], [serve.overlong], [serve.shed]. *)

val serve_unix_socket :
  ?queue:int ->
  ?max_conns:int ->
  ?global_queue:int ->
  ?write_timeout:float ->
  pool:Pool.t ->
  handler:handler ->
  crash_response:(line:string -> Fault.t -> string) ->
  overlong_response:(unit -> string) ->
  shed_response:(unit -> string) ->
  path:string ->
  unit ->
  stats
(** Listen on a Unix domain socket at [path] (replacing any stale
    socket file) and serve up to [max_conns] (default 4, >= 1)
    connections {e concurrently} — one thread per connection, each
    running {!serve} over its own bounded reader and queue — until a
    drain is requested.  A connection accepted at capacity is shed:
    one [shed_response] line, then close (counted under
    [serve.shed_conns], evented as [conn_shed]).  [global_queue]
    (default [max_conns * queue]) caps total in-flight lines across
    connections via the shared limiter.  [write_timeout] (default 10 s;
    [<= 0.] disables) arms SO_SNDTIMEO on each client socket so a
    stalled reader drops only its own connection (counted under
    [serve.conn_dropped]); every client also carries a short
    SO_RCVTIMEO so blocked reads re-check the drain flag — a SIGTERM
    drains even with idle connections open.  Per-connection response
    streams are byte-identical to a solo run of the same request lines
    (the settle seam stays ordered within a connection); the gauge
    [serve.active_connections] and [conn_opened]/[conn_closed] events
    track the connection lifecycle.  Aggregated stats. *)
