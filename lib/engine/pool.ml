type t = { jobs : int }

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs }

let sequential = { jobs = 1 }
let jobs t = t.jobs

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let map_array t f arr =
  let n = Array.length arr in
  if t.jobs <= 1 || n <= 1 || in_worker () then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let record_error e =
      let bt = Printexc.get_raw_backtrace () in
      ignore (Atomic.compare_and_set error None (Some (e, bt)))
    in
    (* each domain pulls the next unclaimed index; distinct indices mean
       distinct result slots, and Domain.join publishes the writes *)
    let body () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get error = None then begin
          (try results.(i) <- Some (f arr.(i)) with e -> record_error e);
          loop ()
        end
      in
      loop ()
    in
    let worker () =
      Domain.DLS.set in_worker_key true;
      body ()
    in
    let spawned = List.init (min t.jobs n - 1) (fun _ -> Domain.spawn worker) in
    (* the caller participates, flagged as a worker so nested fan-outs
       run sequentially instead of oversubscribing; spawned domains are
       joined in the [finally] so even a caller-side exception (an
       asynchronous one, say — kernel failures are folded into [error])
       cannot leak unjoined domains *)
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_worker_key false;
        List.iter Domain.join spawned)
      (fun () ->
        Domain.DLS.set in_worker_key true;
        try body () with e -> record_error e);
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

(* result mode rides on [map_array] with a kernel that cannot raise, so
   every item is evaluated and the error short-circuit never triggers *)
let map_array_result t f arr =
  map_array t (fun x -> match f x with v -> Ok v | exception e -> Error e) arr
