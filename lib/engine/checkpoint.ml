(* Durable journal of completed sweep slots.

   Format: an 8-byte magic ("PPCKPT01") followed by append-only
   records, each

     [klen:u32le] [key bytes] [vlen:u32le] [value bytes] [crc:u32le]

   where value is the slot result marshalled with [Marshal.to_string v
   []] and crc is CRC-32 (IEEE 802.3) over key ^ value.  Replay is
   corruption-tolerant by construction: records are read until the
   first truncated, over-long or CRC-mismatching one, the file is
   truncated back to the last good record, and everything after it is
   simply recomputed — a crash mid-append can at worst lose the record
   being written, never serve a corrupt slot.

   Typing discipline: the journal stores marshalled bytes, so a lookup
   must be deserialised at the same type that was stored.  Keys are
   therefore namespaced by {!Sweep} as "<task name>\x00<slot key>" —
   one task, one result type — and slot keys must encode every input
   the result depends on (context fingerprints included).  The CLI
   arms one journal process-wide ({!set_active}); sweeps consult it on
   every keyed slot. *)

type t = {
  dir : string;
  path : string;
  file_lock : Lockfile.t; (* single-writer guard, released at close *)
  mutable oc : out_channel option;
  lock : Mutex.t;
  table : (string, string) Hashtbl.t; (* key -> marshalled value *)
  mutable replayed : int; (* records served back from disk at open *)
  mutable served : int;
  mutable appended : int;
  mutable dropped : bool; (* a corrupt tail was truncated at open *)
}

let magic = "PPCKPT01"
let journal_name = "journal.ppck"
let max_key_len = 1_000_000
let max_value_len = 256_000_000

(* --- CRC-32 (IEEE 802.3), table-driven, dependency-free ------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_update crc s =
  let t = Lazy.force crc_table in
  let c = ref crc in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  !c

let crc32 s = Int32.logxor 0xFFFFFFFFl (crc32_update 0xFFFFFFFFl s)

let record_crc ~key ~value =
  Int32.logxor 0xFFFFFFFFl (crc32_update (crc32_update 0xFFFFFFFFl key) value)

(* --- binary plumbing ------------------------------------------------ *)

let u32_to_bytes n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let read_u32 ic =
  let b = Bytes.create 4 in
  really_input ic b 0 4;
  Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF

let read_string ic n =
  let b = Bytes.create n in
  really_input ic b 0 n;
  Bytes.unsafe_to_string b

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- replay --------------------------------------------------------- *)

(* read records until the first bad one; returns the byte offset just
   past the last good record *)
let replay_channel ic table =
  let good_end = ref (String.length magic) in
  (try
     while true do
       let klen = read_u32 ic in
       if klen < 1 || klen > max_key_len then raise Exit;
       let key = read_string ic klen in
       let vlen = read_u32 ic in
       if vlen < 0 || vlen > max_value_len then raise Exit;
       let value = read_string ic vlen in
       let crc = read_u32 ic in
       if Int32.to_int (record_crc ~key ~value) land 0xFFFFFFFF <> crc then raise Exit;
       Hashtbl.replace table key value;
       good_end := pos_in ic
     done
   with End_of_file | Exit -> ());
  !good_end

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

(* --- lifecycle ------------------------------------------------------ *)

let open_ ~dir ~resume =
  mkdir_p dir;
  let path = Filename.concat dir journal_name in
  (* single-writer discipline: two processes (or two handles) armed on
     the same journal would interleave records; fail fast instead.  The
     lock is held until [close] and survives crashes via stale-PID
     detection in {!Lockfile}. *)
  let file_lock = Lockfile.acquire ~path:(path ^ ".lock") in
  let body () =
  let table = Hashtbl.create 64 in
  let dropped = ref false in
  let fresh = ref true in
  if resume && Sys.file_exists path then begin
    let ic = open_in_bin path in
    let size = in_channel_length ic in
    let good_end =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let head = if size >= String.length magic then read_string ic (String.length magic) else "" in
          if String.equal head magic then replay_channel ic table else 0)
    in
    if good_end > 0 then begin
      fresh := false;
      if good_end < size then begin
        (* corrupt or truncated tail: drop it so appends extend a
           journal whose every byte is known good *)
        dropped := true;
        truncate_file path good_end
      end
    end
  end;
  let oc =
    if !fresh then begin
      let oc = open_out_bin path in
      output_string oc magic;
      flush oc;
      oc
    end
    else open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  let replayed = Hashtbl.length table in
  if replayed > 0 then begin
    Metrics.incr ~by:replayed "checkpoint.replayed";
    if Events.enabled () then
      Events.emit (Events.Checkpoint_replayed { dir; replayed })
  end;
  if !dropped then Metrics.incr "checkpoint.dropped";
  {
    dir;
    path;
    file_lock;
    oc = Some oc;
    lock = Mutex.create ();
    table;
    replayed;
    served = 0;
    appended = 0;
    dropped = !dropped;
  }
  in
  (match body () with
  | t -> t
  | exception e ->
    Lockfile.release file_lock;
    raise e)

let close t =
  Mutex.protect t.lock (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        flush oc;
        close_out oc);
  Lockfile.release t.file_lock

let dir t = t.dir
let path t = t.path
let replayed t = t.replayed
let served t = Mutex.protect t.lock (fun () -> t.served)
let appended t = Mutex.protect t.lock (fun () -> t.appended)
let dropped_tail t = t.dropped
let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let mem t ~key = Mutex.protect t.lock (fun () -> Hashtbl.mem t.table key)

let lookup : type a. t -> key:string -> a option =
 fun t ~key ->
  let value = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key) in
  match value with
  | None -> None
  | Some v ->
    Mutex.protect t.lock (fun () -> t.served <- t.served + 1);
    Metrics.incr "checkpoint.served";
    Some (Marshal.from_string v 0)

let store t ~key v =
  let value = Marshal.to_string v [] in
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        Hashtbl.replace t.table key value;
        match t.oc with
        | None -> ()
        | Some oc ->
          output_string oc (u32_to_bytes (String.length key));
          output_string oc key;
          output_string oc (u32_to_bytes (String.length value));
          output_string oc value;
          output_string oc
            (u32_to_bytes (Int32.to_int (record_crc ~key ~value) land 0xFFFFFFFF));
          (* flush per record: a crash loses at most the half-written
             tail, which replay truncates *)
          flush oc;
          t.appended <- t.appended + 1;
          Metrics.incr "checkpoint.appended"
      end)

(* --- the process-wide active journal -------------------------------- *)

let active_state : t option Atomic.t = Atomic.make None
let set_active c = Atomic.set active_state c
let active () = Atomic.get active_state
