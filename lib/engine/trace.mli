(** Per-stage observability for the execution engine.

    Every {!Sweep} fan-out and {!Task} run records a stage sample:
    call count, task count, busy time (summed kernel wall time) and
    elapsed wall time.  Memo caches record hit/miss counters.  The
    collected numbers render as a plain-text summary table — the data
    behind [ppcache run --trace] and the bench report.

    Recording is always on (a mutex-protected table update per
    fan-out, nanoseconds against kernels that run for milliseconds);
    [reset] zeroes the tables, e.g. between timed comparisons. *)

type stage = {
  name : string;
  mutable calls : int;    (** fan-outs / task runs recorded *)
  mutable tasks : int;    (** total kernel evaluations *)
  mutable busy_s : float; (** Σ kernel wall time [s] *)
  mutable wall_s : float; (** Σ elapsed wall time [s] *)
}

type cache_counter = {
  cache : string;
  mutable hits : int;
  mutable misses : int;
}

val record : stage:string -> tasks:int -> busy_s:float -> wall_s:float -> unit

val with_stage : string -> (unit -> 'a) -> 'a
(** Time [f ()] as a single-task stage sample (records even if [f]
    raises). *)

val cache_hit : string -> unit
val cache_miss : string -> unit

val cache_stats : string -> int * int
(** [(hits, misses)] for a named cache; [(0, 0)] if never touched. *)

val stages : unit -> stage list
(** Snapshot in first-recorded order. *)

val cache_counters : unit -> cache_counter list

val reset : unit -> unit

val summary : unit -> string
(** Rendered summary: one table of stages and one of cache counters.
    The speedup column is busy/wall — the average number of kernels in
    flight, which equals the real speedup when each worker keeps a
    core to itself (on an oversubscribed machine it reads as apparent
    concurrency instead).  Empty string when nothing was recorded. *)
