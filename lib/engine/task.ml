type ('a, 'b) t = {
  name : string;
  f : 'a -> 'b;
}

let make ~name f = { name; f }
let name t = t.name
let kernel t = t.f
let run t x =
  Trace.with_stage t.name (fun () -> Span.with_span t.name (fun () -> t.f x))
