type ('a, 'b) t = {
  name : string;
  f : 'a -> 'b;
  key : ('a -> string) option;
}

let make ~name ?key f = { name; f; key }
let name t = t.name
let kernel t = t.f
let slot_key t x = Option.map (fun k -> k x) t.key
let run t x =
  Trace.with_stage t.name (fun () -> Span.with_span t.name (fun () -> t.f x))
