type span = {
  id : int;
  parent : int option;
  name : string;
  tid : int;
  ts_us : float;
  dur_us : float;
  attrs : (string * Json.t) list;
}

let schema_version = 1
let enabled_flag = Atomic.make false
let next_id = Atomic.make 1
let epoch = Atomic.make 0.0 (* Unix time of set_enabled true *)
let mutex = Mutex.create ()
let completed : span list ref = ref []

(* per-domain stack of open span ids; the list ref is domain-local so
   no lock is needed to push/pop *)
let stack_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let enabled () = Atomic.get enabled_flag

let reset () =
  Mutex.protect mutex (fun () -> completed := []);
  Atomic.set epoch (Unix.gettimeofday ())

let set_enabled b =
  if b then reset ();
  Atomic.set enabled_flag b

let current_id () =
  match !(Domain.DLS.get stack_key) with [] -> None | id :: _ -> Some id

let with_parent parent f =
  let stack = Domain.DLS.get stack_key in
  let saved = !stack in
  stack := (match parent with Some id -> [ id ] | None -> []);
  Fun.protect ~finally:(fun () -> stack := saved) f

let record s = Mutex.protect mutex (fun () -> completed := s :: !completed)

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | id :: _ -> Some id in
    let id = Atomic.fetch_and_add next_id 1 in
    stack := id :: !stack;
    let r0 = Resource.sample () in
    let t0 = r0.Resource.wall in
    Fun.protect
      ~finally:(fun () ->
        let r1 = Resource.sample () in
        let t1 = r1.Resource.wall in
        (match !stack with
        | top :: rest when top = id -> stack := rest
        | _ -> () (* enabled flag flipped mid-span; stack already reset *));
        let e = Atomic.get epoch in
        record
          {
            id;
            parent;
            name;
            tid = (Domain.self () :> int);
            ts_us = (t0 -. e) *. 1e6;
            dur_us = (t1 -. t0) *. 1e6;
            (* every traced span carries its GC-allocation delta *)
            attrs = attrs @ Resource.span_attrs ~before:r0 ~after:r1;
          })
      f
  end

let spans () =
  let all = Mutex.protect mutex (fun () -> !completed) in
  List.sort
    (fun a b ->
      match compare a.ts_us b.ts_us with 0 -> compare a.id b.id | c -> c)
    all

let to_chrome_json () =
  let events =
    List.map
      (fun s ->
        let args =
          ("span_id", Json.Int s.id)
          :: (match s.parent with
             | Some p -> [ ("parent_id", Json.Int p) ]
             | None -> [])
          @ s.attrs
        in
        Json.Obj
          [
            ("name", Json.String s.name);
            ("cat", Json.String "engine");
            ("ph", Json.String "X");
            ("ts", Json.Float s.ts_us);
            ("dur", Json.Float s.dur_us);
            ("pid", Json.Int 1);
            ("tid", Json.Int s.tid);
            ("args", Json.Obj args);
          ])
      (spans ())
  in
  let process_name =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String "ppcache") ]);
      ]
  in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (process_name :: events));
    ]
