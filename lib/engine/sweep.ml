let map_array ?pool task arr =
  let pool = match pool with Some p -> p | None -> Executor.pool () in
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let times = Array.make n 0.0 in
    let t0 = Unix.gettimeofday () in
    let results =
      Pool.map_array pool
        (fun i ->
          let s = Unix.gettimeofday () in
          let r = Task.kernel task arr.(i) in
          times.(i) <- Unix.gettimeofday () -. s;
          r)
        (Array.init n Fun.id)
    in
    let wall = Unix.gettimeofday () -. t0 in
    Trace.record ~stage:(Task.name task) ~tasks:n
      ~busy_s:(Array.fold_left ( +. ) 0.0 times)
      ~wall_s:wall;
    results
  end

let map_list ?pool task l = Array.to_list (map_array ?pool task (Array.of_list l))
