(* one slot's evaluation, with the resilience plumbing applied in a
   fixed order: serve the slot from the armed checkpoint journal if it
   is keyed and already there; otherwise arm the default deadline
   budget at the kernel root, compute, and journal the fresh result.
   Serving happens *before* any deadline or fault can fire, so resumed
   slots are immune to re-injection — which is exactly what makes a
   crashed-then-resumed run byte-identical to an uninterrupted one. *)
let eval_slot task x =
  match Checkpoint.active () with
  | None -> Deadline.with_root (fun () -> Task.kernel task x)
  | Some journal -> (
    match Task.slot_key task x with
    | None -> Deadline.with_root (fun () -> Task.kernel task x)
    | Some slot ->
      let key = Task.name task ^ "\x00" ^ slot in
      (match Checkpoint.lookup journal ~key with
      | Some v -> v
      | None ->
        let v = Deadline.with_root (fun () -> Task.kernel task x) in
        Checkpoint.store journal ~key v;
        v))

let map_array ?pool task arr =
  let pool = match pool with Some p -> p | None -> Executor.pool () in
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let name = Task.name task in
    let domains = min (Pool.jobs pool) n in
    Metrics.incr "pool.fanouts";
    Metrics.observe "pool.fanout.tasks" (float_of_int n);
    Metrics.observe "pool.fanout.domains" (float_of_int domains);
    let run_fanout () =
      (* the fan-out span is open here; kernels on spawned domains get
         re-parented to it explicitly since their span stack is fresh *)
      let parent = Span.current_id () in
      let traced = Span.enabled () in
      let times = Array.make n 0.0 in
      if Events.enabled () then
        Events.emit (Events.Sweep_started { name; total = n });
      (* per-fanout completion counter; events carry it so a consumer
         can track progress without assuming arrival order *)
      let completed = Atomic.make 0 in
      let t0 = Unix.gettimeofday () in
      let kernel i =
        let s = Unix.gettimeofday () in
        let r =
          if traced then
            Span.with_parent parent (fun () ->
                Span.with_span ~attrs:[ ("index", Json.Int i) ] name (fun () ->
                    eval_slot task arr.(i)))
          else eval_slot task arr.(i)
        in
        times.(i) <- Unix.gettimeofday () -. s;
        if Events.enabled () then begin
          let done_now = 1 + Atomic.fetch_and_add completed 1 in
          let memo_hits =
            List.fold_left
              (fun acc (c : Trace.cache_counter) -> acc + c.Trace.hits)
              0 (Trace.cache_counters ())
          in
          Events.emit
            (Events.Slot_done
               {
                 name;
                 index = i;
                 completed = done_now;
                 total = n;
                 memo_hits;
                 faults = List.length (Fault.recorded ());
                 retries = Metrics.counter_value "retry.attempts";
               })
        end;
        r
      in
      let results = Pool.map_array pool kernel (Array.init n Fun.id) in
      let wall = Unix.gettimeofday () -. t0 in
      Trace.record ~stage:name ~tasks:n
        ~busy_s:(Array.fold_left ( +. ) 0.0 times)
        ~wall_s:wall;
      results
    in
    Span.with_span
      ~attrs:[ ("tasks", Json.Int n); ("domains", Json.Int domains) ]
      ("sweep:" ^ name) run_fanout
  end

let map_list ?pool task l = Array.to_list (map_array ?pool task (Array.of_list l))

(* result mode: the same instrumented fan-out, with the kernel wrapped
   so a failure settles into its own slot as a recorded fault instead
   of aborting the sweep.  The wrapper catches before the span closes,
   so a faulted kernel still reports its span and stage sample.  The
   wrapper task itself is unkeyed — checkpoint service happens inside,
   on the *underlying* task, so the journal stores raw slot results
   (never [Ok]-wrapped ones) and only successes are journaled: faulted
   slots are recomputed, and possibly recovered, on resume. *)
let map_array_result ?pool task arr =
  let name = Task.name task in
  let safe =
    Task.make ~name (fun x ->
        match eval_slot task x with
        | v -> Ok v
        | exception e ->
          let fault = Fault.of_exn ~stage:name e in
          Fault.record fault;
          Error fault)
  in
  map_array ?pool safe arr

let map_list_result ?pool task l =
  Array.to_list (map_array_result ?pool task (Array.of_list l))
