type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    (* %.17g round-trips doubles exactly; force a '.' or exponent so the
       value parses back as a float, not an int *)
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E' && c <> 'n') s then
      Buffer.add_string buf ".0"
  end

let rec render buf ~indent ~level v =
  let nl lvl =
    match indent with
    | None -> ()
    | Some pad ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (pad * lvl) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        render buf ~indent ~level:(level + 1) item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape_string buf k;
        Buffer.add_char buf ':';
        if indent <> None then Buffer.add_char buf ' ';
        render buf ~indent ~level:(level + 1) item)
      fields;
    nl level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf ~indent:None ~level:0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  render buf ~indent:(Some 2) ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of int * string

let parse_exn_internal s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* decode to UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ()
      end
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* out-of-range integer literal: fall back to float *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  try Ok (parse_exn_internal s)
  with Parse_error (pos, msg) -> Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith msg

(* --- accessors ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
