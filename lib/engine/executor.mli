(** Process-wide parallelism knob.

    The executor holds the degree of parallelism sweeps use when no
    explicit pool is passed — the CLI's [--jobs N] lands here.  The
    default is 1 (fully sequential), so nothing in the repo changes
    behaviour unless parallelism is requested. *)

val set_jobs : int -> unit
(** Raises [Invalid_argument] if [jobs < 1]. *)

val get_jobs : unit -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what a "use the hardware"
    caller (the bench harness) should pass. *)

val pool : unit -> Pool.t
(** A pool of the current [jobs] width. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run with the knob temporarily set, restoring on exit. *)
