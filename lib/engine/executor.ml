let jobs = Atomic.make 1

let set_jobs n =
  if n < 1 then invalid_arg "Executor.set_jobs: jobs must be >= 1";
  Atomic.set jobs n;
  Metrics.set_gauge "pool.jobs" (float_of_int n)

let get_jobs () = Atomic.get jobs
let default_jobs () = max 1 (Domain.recommended_domain_count ())
let pool () = Pool.create ~jobs:(Atomic.get jobs)

let with_jobs n f =
  let prev = Atomic.get jobs in
  set_jobs n;
  Fun.protect ~finally:(fun () -> Atomic.set jobs prev) f
