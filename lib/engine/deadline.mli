(** Cooperative kernel deadlines: poll-based cancellation tokens.

    A wedged kernel must become a typed fault, not a hung pool.  Since
    OCaml domains cannot be killed safely, cancellation is cooperative:
    the engine arms a per-domain budget token around every sweep slot
    ({!with_root}, driven by the process default from [ppcache run
    --deadline S]), and long-running kernels poll it at their loop
    seams — LM iterations ({!Lm.fit}'s [check] hook), annealer steps,
    cachesim replay batches.  An expired {!poll} raises a
    [Fault.Timed_out] fault that the sweep's result boundary settles
    into that slot, so the pool always drains and the run reports the
    casualty like any other fault.

    The token lives in domain-local storage, so each pool worker carries
    its own; nested sweeps (which run sequentially on the worker's
    domain) inherit the enclosing kernel's budget rather than restarting
    it.  The fault detail mentions only the configured budget — never
    elapsed time — so output stays byte-stable when a deadline fires. *)

val set_default : float option -> unit
(** Process-wide budget (seconds) armed at every sweep-slot root; [None]
    (the initial state) runs kernels unbounded.  A budget of [0.0] makes
    the first poll fire — the deterministic setting used in tests.
    Raises [Invalid_argument] on a negative budget. *)

val default : unit -> float option

val with_budget : budget_s:float -> (unit -> 'a) -> 'a
(** Run [f] with this domain's token armed to expire [budget_s] seconds
    from now; restores the previous token state on exit (nesting
    narrows, never extends). *)

val with_root : (unit -> 'a) -> 'a
(** Arm the process default budget around a sweep-slot kernel — a nop
    when no default is set or when this domain's token is already armed
    (a nested sweep inside a budgeted kernel). *)

val armed : unit -> bool
(** Whether this domain currently carries an armed token. *)

val expired : unit -> bool
(** Whether an armed token has expired, without raising. *)

val poll : stage:string -> unit
(** The cancellation point: raise [Fault.Timed_out] at [stage] (and
    count [deadline.fired]) if this domain's token has expired; a cheap
    nop otherwise.  Call it every few thousand loop iterations — often
    enough to bound overrun, rarely enough to stay off the profile. *)
