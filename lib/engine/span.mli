(** Span-tree tracing: nested, attributed, domain-safe timing spans,
    exportable as Chrome [trace_event] JSON (loadable in Perfetto /
    [chrome://tracing]).

    A span is one timed region.  Spans nest: each domain keeps its own
    span stack, so [with_span] inside [with_span] records a
    parent/child edge; {!Sweep} propagates the parent across the
    domain boundary of a fan-out, so kernels running on worker domains
    still hang off the fan-out span that launched them.

    Recording is off by default — a disabled [with_span] is one atomic
    load and a direct call of [f], so instrumentation can stay in hot
    paths permanently.  [set_enabled true] stamps the trace epoch and
    starts collecting; the CLI's [--trace-json] and the bench harness
    turn it on.

    Span output is inherently timing-dependent, so it is written to a
    side file and deliberately excluded from the byte-identical
    determinism gate on experiment output.

    Naming convention: [<layer>:<object>] — [experiment:fig1],
    [sweep:missrate.l2-curve], kernel spans carry the task name plus
    an [index] attribute. *)

type span = {
  id : int;                           (** unique, process-wide *)
  parent : int option;                (** enclosing span, if any *)
  name : string;
  tid : int;                          (** domain id the span ran on *)
  ts_us : float;                      (** start, µs since the trace epoch *)
  dur_us : float;
  attrs : (string * Json.t) list;
}

val set_enabled : bool -> unit
(** Enabling resets collected spans and restarts the epoch. *)

val enabled : unit -> bool

val with_span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run [f] inside a span (recorded even if [f] raises).  No-op wrapper
    when disabled.  Every recorded span additionally carries the
    {!Resource.span_attrs} GC-allocation deltas ([minor_words] /
    [major_words] / [major_collections]) measured over [f]. *)

val current_id : unit -> int option
(** Innermost open span on the calling domain. *)

val with_parent : int option -> (unit -> 'a) -> 'a
(** Run [f] with its span-stack rooted at an explicit parent — the
    cross-domain handoff used by {!Sweep} fan-outs. *)

val spans : unit -> span list
(** Completed spans sorted by (start time, id). *)

val reset : unit -> unit

val to_chrome_json : unit -> Json.t
(** [{"schema_version": .., "traceEvents": [..]}] — complete ("ph":"X")
    events carrying [pid]/[tid]/[ts]/[dur], with [span_id]/[parent_id]
    and the user attributes under ["args"]. *)

val schema_version : int
