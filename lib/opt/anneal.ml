module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Rng = Nmcache_numerics.Rng

type params = {
  iterations : int;
  t_start : float;
  t_end : float;
  penalty_weight : float;
  seed : int64;
}

let default_params =
  { iterations = 20_000; t_start = 1.0; t_end = 1e-4; penalty_weight = 1e4; seed = 1L }

type result = {
  assignment : Component.assignment;
  leak_w : float;
  access_time : float;
  feasible : bool;
  evaluations : int;
}

let n_components = List.length Component.all_kinds

let minimize_leakage ?(params = default_params) fitted ~grid ~delay_budget () =
  if delay_budget <= 0.0 then invalid_arg "Anneal.minimize_leakage: non-positive budget";
  let fault_key =
    Printf.sprintf "seed=%Ld:iters=%d:budget=%.4e" params.seed params.iterations
      delay_budget
  in
  (* retry boundary: an injected transient at the anneal fault point is
     retried (per-attempt arm semantics) before becoming a casualty *)
  Nmcache_engine.Retry.run ~stage:"anneal" ~key:fault_key (fun ~attempt ~last:_ ->
      Nmcache_engine.Faultpoint.hit ~attempt ~point:"anneal" ~key:fault_key ());
  let knobs = Grid.knobs grid in
  let n = Array.length knobs in
  let rng = Rng.create ~seed:params.seed in
  (* per-component tables *)
  let leak = Array.make_matrix n_components n 0.0 in
  let delay = Array.make_matrix n_components n 0.0 in
  List.iteri
    (fun c kind ->
      Array.iteri
        (fun i k ->
          leak.(c).(i) <- Fitted_cache.leak_of fitted kind k;
          delay.(c).(i) <- Fitted_cache.delay_of fitted kind k)
        knobs)
    Component.all_kinds;
  (* relative-cost scale: the all-slowest (lowest-leak) state *)
  let floor_leak =
    Array.fold_left (fun acc row -> acc +. Array.fold_left Float.min row.(0) row) 0.0 leak
  in
  let floor_leak = Float.max floor_leak 1e-15 in
  let cost state =
    let l = ref 0.0 and d = ref 0.0 in
    for c = 0 to n_components - 1 do
      l := !l +. leak.(c).(state.(c));
      d := !d +. delay.(c).(state.(c))
    done;
    let excess = Float.max 0.0 (!d -. delay_budget) /. delay_budget in
    ((!l /. floor_leak) +. (params.penalty_weight *. excess), !l, !d)
  in
  (* start from the fastest knob per component (always budget-feasible
     if anything is) *)
  let state =
    Array.init n_components (fun c ->
        let best = ref 0 in
        for i = 1 to n - 1 do
          if delay.(c).(i) < delay.(c).(!best) then best := i
        done;
        !best)
  in
  let current_cost = ref ((fun (c, _, _) -> c) (cost state)) in
  let best_state = Array.copy state in
  let best = ref (cost state) in
  (* track the best *feasible* state separately: the annealing cost may
     prefer slightly-infeasible states, but the answer must not *)
  let best_feasible : (float * int array) option ref =
    (let _, l0, d0 = cost state in
     if d0 <= delay_budget then ref (Some (l0, Array.copy state)) else ref None)
  in
  let evaluations = ref 1 in
  let cooling =
    if params.iterations <= 1 then 1.0
    else (params.t_end /. params.t_start) ** (1.0 /. float_of_int params.iterations)
  in
  let temperature = ref params.t_start in
  let accepted = ref 0 in
  for iter = 1 to params.iterations do
    (* cooperative cancellation: a few hundred polls over a 20k-step
       anneal keeps overrun bounded at negligible cost *)
    if iter land 63 = 0 then Nmcache_engine.Deadline.poll ~stage:"anneal";
    let c = Rng.int rng ~bound:n_components in
    let old = state.(c) in
    (* local move in the grid with occasional global jumps *)
    let proposal =
      if Rng.bernoulli rng ~p:0.15 then Rng.int rng ~bound:n
      else begin
        let step = 1 + Rng.int rng ~bound:3 in
        let dir = if Rng.bool rng then step else -step in
        let v = old + dir in
        if v < 0 then 0 else if v >= n then n - 1 else v
      end
    in
    state.(c) <- proposal;
    let (c_new, _, _) as full = cost state in
    incr evaluations;
    let accept =
      c_new <= !current_cost
      || Rng.float rng < Float.exp ((!current_cost -. c_new) /. Float.max !temperature 1e-12)
    in
    if accept then begin
      incr accepted;
      current_cost := c_new;
      let best_cost, _, _ = !best in
      if c_new < best_cost then begin
        best := full;
        Array.blit state 0 best_state 0 n_components
      end;
      let _, l_new, d_new = full in
      if d_new <= delay_budget then begin
        match !best_feasible with
        | Some (l, _) when l <= l_new -> ()
        | Some _ | None -> best_feasible := Some (l_new, Array.copy state)
      end
    end
    else state.(c) <- old;
    temperature := !temperature *. cooling
  done;
  let module Metrics = Nmcache_engine.Metrics in
  Metrics.incr "anneal.runs";
  Metrics.incr ~by:params.iterations "anneal.proposals";
  Metrics.incr ~by:!accepted "anneal.accepted";
  Metrics.incr ~by:!evaluations "anneal.evaluations";
  if params.iterations > 0 then
    Metrics.observe "anneal.acceptance_rate"
      (float_of_int !accepted /. float_of_int params.iterations);
  let chosen_state, leak_w, access_time, feasible =
    match !best_feasible with
    | Some (_, st) ->
      let l = ref 0.0 and d = ref 0.0 in
      for c = 0 to n_components - 1 do
        l := !l +. leak.(c).(st.(c));
        d := !d +. delay.(c).(st.(c))
      done;
      (st, !l, !d, true)
    | None ->
      let _, l, d = !best in
      (best_state, l, d, false)
  in
  let assignment =
    List.fold_left
      (fun acc kind ->
        Component.set acc kind knobs.(chosen_state.(Component.kind_index kind)))
      (Component.uniform knobs.(0))
      Component.all_kinds
  in
  { assignment; leak_w; access_time; feasible; evaluations = !evaluations }
