module Component = Nmcache_geometry.Component
module Fitted_cache = Nmcache_fit.Fitted_cache
module Task = Nmcache_engine.Task
module Sweep = Nmcache_engine.Sweep

type t = Independent | Split | Uniform

let all = [ Independent; Split; Uniform ]
let name = function Independent -> "I" | Split -> "II" | Uniform -> "III"

let long_name = function
  | Independent -> "Scheme I (independent pairs)"
  | Split -> "Scheme II (cell pair + peripheral pair)"
  | Uniform -> "Scheme III (single pair)"

let of_name s =
  match String.lowercase_ascii s with
  | "i" | "1" | "independent" -> Some Independent
  | "ii" | "2" | "split" -> Some Split
  | "iii" | "3" | "uniform" -> Some Uniform
  | _ -> None

type result = {
  scheme : t;
  assignment : Component.assignment;
  leak_w : float;
  access_time : float;
}

(* Per-component tables over the grid's knob list: index -> value. *)
type tables = {
  knobs : Component.knob array;
  leak : float array array;  (* [component][knob] *)
  delay : float array array;
}

(* one task per knob: evaluate every component's fitted leak and delay
   there; columns land in knob order, so the tables are identical to a
   sequential build *)
let table_task fitted =
  Task.make ~name:"scheme.tables" (fun knob ->
      let eval f = Array.of_list (List.map (fun kind -> f kind knob) Component.all_kinds) in
      (eval (Fitted_cache.leak_of fitted), eval (Fitted_cache.delay_of fitted)))

let build_tables fitted ~grid =
  let knobs = Grid.knobs grid in
  let columns = Sweep.map_array (table_task fitted) knobs in
  let n_kinds = List.length Component.all_kinds in
  let per pick c = Array.init (Array.length knobs) (fun i -> (pick columns.(i)).(c)) in
  {
    knobs;
    leak = Array.init n_kinds (per fst);
    delay = Array.init n_kinds (per snd);
  }

let n_components = List.length Component.all_kinds

let assignment_of_indices tables idx =
  List.fold_left
    (fun acc kind ->
      Component.set acc kind tables.knobs.(idx.(Component.kind_index kind)))
    (Component.uniform tables.knobs.(0))
    Component.all_kinds

let totals tables idx =
  let leak = ref 0.0 and delay = ref 0.0 in
  for c = 0 to n_components - 1 do
    leak := !leak +. tables.leak.(c).(idx.(c));
    delay := !delay +. tables.delay.(c).(idx.(c))
  done;
  (!leak, !delay)

let result_of scheme tables idx =
  let leak_w, access_time = totals tables idx in
  { scheme; assignment = assignment_of_indices tables idx; leak_w; access_time }

(* Scheme III: one knob index for all components. *)
let minimize_uniform tables ~delay_budget =
  let n = Array.length tables.knobs in
  let best = ref None in
  for i = 0 to n - 1 do
    let idx = Array.make n_components i in
    let leak, delay = totals tables idx in
    if delay <= delay_budget then
      match !best with
      | Some (_, l) when l <= leak -> ()
      | _ -> best := Some (idx, leak)
  done;
  Option.map (fun (idx, _) -> result_of Uniform tables idx) !best

(* Scheme II: index i for the array, j for the three peripherals.  The
   outer (array-knob) loop fans out across domains; each task scans its
   peripheral column and the per-i bests are reduced in index order, so
   ties resolve to the same (i, j) the sequential double loop picks. *)
let minimize_split tables ~delay_budget =
  let n = Array.length tables.knobs in
  let array_c = Component.kind_index Component.Array_sense in
  let row_task =
    Task.make ~name:"scheme.split" (fun i ->
        let best = ref None in
        for j = 0 to n - 1 do
          let idx = Array.make n_components j in
          idx.(array_c) <- i;
          let leak, delay = totals tables idx in
          if delay <= delay_budget then
            match !best with
            | Some (_, l) when l <= leak -> ()
            | _ -> best := Some (idx, leak)
        done;
        !best)
  in
  let row_bests = Sweep.map_array row_task (Array.init n Fun.id) in
  let best =
    Array.fold_left
      (fun acc cand ->
        match (acc, cand) with
        | Some (_, l), Some (_, leak) when l <= leak -> acc
        | _, Some _ -> cand
        | _, None -> acc)
      None row_bests
  in
  Option.map (fun (idx, _) -> result_of Split tables idx) best

(* Scheme I: exact DP over discretised delay.  Component delays are
   rounded UP to a bin, so any DP-feasible solution is truly feasible;
   4000 bins keeps the rounding loss below ~0.1% of the budget.
   table.(c).(b) = minimal leakage of components 0..c using at most b
   delay bins; choice.(c).(b) = the knob index component c uses there. *)
let dp_bins = 20000

let minimize_independent tables ~delay_budget =
  Nmcache_engine.Trace.with_stage "scheme.dp" @@ fun () ->
  let n = Array.length tables.knobs in
  let unit = delay_budget /. float_of_int dp_bins in
  let bin_of d = int_of_float (Float.ceil (d /. unit)) in
  let infinite = Float.max_float in
  let table = Array.init n_components (fun _ -> Array.make (dp_bins + 1) infinite) in
  let choice = Array.init n_components (fun _ -> Array.make (dp_bins + 1) (-1)) in
  for c = 0 to n_components - 1 do
    for i = 0 to n - 1 do
      let db = bin_of tables.delay.(c).(i) in
      let leak = tables.leak.(c).(i) in
      if db <= dp_bins then
        for b = db to dp_bins do
          let prev = if c = 0 then 0.0 else table.(c - 1).(b - db) in
          if prev < infinite then begin
            let cand = prev +. leak in
            if cand < table.(c).(b) then begin
              table.(c).(b) <- cand;
              choice.(c).(b) <- i
            end
          end
        done
    done;
    (* prefix-min: a budget of b bins can always use fewer *)
    for b = 1 to dp_bins do
      if table.(c).(b - 1) < table.(c).(b) then begin
        table.(c).(b) <- table.(c).(b - 1);
        choice.(c).(b) <- choice.(c).(b - 1)
      end
    done
  done;
  if table.(n_components - 1).(dp_bins) >= infinite then None
  else begin
    let idx = Array.make n_components 0 in
    let b = ref dp_bins in
    for c = n_components - 1 downto 0 do
      let i = choice.(c).(!b) in
      assert (i >= 0);
      idx.(c) <- i;
      b := !b - bin_of tables.delay.(c).(i)
    done;
    Some (result_of Independent tables idx)
  end

let minimize_leakage fitted ~grid ~scheme ~delay_budget =
  if delay_budget <= 0.0 then invalid_arg "Scheme.minimize_leakage: non-positive budget";
  let tables = build_tables fitted ~grid in
  match scheme with
  | Uniform -> minimize_uniform tables ~delay_budget
  | Split -> minimize_split tables ~delay_budget
  | Independent -> (
    (* Scheme II's space is a subset of Scheme I's, so its exhaustive
       optimum is a sound fallback against the DP's delay-rounding
       pessimism at very tight budgets. *)
    let relabel r = { r with scheme = Independent } in
    let dp = minimize_independent tables ~delay_budget in
    let split = Option.map relabel (minimize_split tables ~delay_budget) in
    match (dp, split) with
    | None, None -> None
    | (Some _ as r), None -> r
    | None, (Some _ as r) -> r
    | Some a, Some b -> Some (if b.leak_w < a.leak_w then b else a))

let extreme_access_time fitted ~grid ~pick =
  let tables = build_tables fitted ~grid in
  let n = Array.length tables.knobs in
  let total = ref 0.0 in
  for c = 0 to n_components - 1 do
    let best = ref tables.delay.(c).(0) in
    for i = 1 to n - 1 do
      best := pick !best tables.delay.(c).(i)
    done;
    total := !total +. !best
  done;
  !total

let fastest_access_time fitted ~grid = extreme_access_time fitted ~grid ~pick:Float.min
let slowest_access_time fitted ~grid = extreme_access_time fitted ~grid ~pick:Float.max
