(** The discrete (Vth, Tox) design grid.

    The paper optimises over discrete knob values "with small step
    size"; this module materialises that grid from a technology's legal
    ranges. *)

type t = {
  vths : float array;  (** ascending [V] *)
  toxs : float array;  (** ascending [m] *)
}

val steps_between : lo:float -> hi:float -> step:float -> float array
(** [lo, lo+step, …] up to [hi].  When [hi] lands on the grid up to
    float-rounding drift the endpoint count is trusted; otherwise the
    array stops at the last step that does not overshoot [hi].  Raises
    [Invalid_argument] on a non-positive step or [hi < lo]. *)

val make : ?vth_step:float -> ?tox_step_angstrom:float -> Nmcache_device.Tech.t -> t
(** Defaults: 25 mV Vth step, 0.5 Å Tox step — 13 × 9 = 117 points for
    the bptm65 ranges.  Raises [Invalid_argument] on non-positive
    steps. *)

val coarse : Nmcache_device.Tech.t -> t
(** 50 mV / 1 Å: 7 × 5 = 35 points; used where an outer loop multiplies
    the cost (the tuple problem). *)

val fine : Nmcache_device.Tech.t -> t
(** 12.5 mV / 0.25 Å grid for convergence checks. *)

val knobs : t -> Nmcache_geometry.Component.knob array
(** Cross product, vth-major. *)

val size : t -> int
(** [Array.length (knobs t)]. *)

val nearest : t -> Nmcache_geometry.Component.knob -> Nmcache_geometry.Component.knob
(** Snap an arbitrary knob to the nearest grid point. *)

val subsample : t -> vths:int -> toxs:int -> t
(** An evenly-spaced sub-grid with at most [vths] x [toxs] points,
    always keeping both endpoints of each axis — the downsampled search
    space the verification oracles brute-force.  Axes shorter than the
    request are kept whole.  Raises [Invalid_argument] when either
    count is < 2. *)
