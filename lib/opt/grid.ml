module Tech = Nmcache_device.Tech
module Units = Nmcache_physics.Units
module Component = Nmcache_geometry.Component

type t = {
  vths : float array;
  toxs : float array;
}

let steps_between ~lo ~hi ~step =
  if step <= 0.0 then invalid_arg "Grid: non-positive step";
  if hi < lo then invalid_arg "Grid: hi below lo";
  let raw = (hi -. lo) /. step in
  let rounded = Float.round raw in
  let tol = 1e-9 *. Float.max 1.0 (Float.abs raw) in
  (* [hi] on the grid up to float drift -> trust the rounded count;
     otherwise stop at the last step that does not overshoot [hi] *)
  let n =
    if Float.abs (raw -. rounded) <= tol then int_of_float rounded
    else int_of_float (Float.floor (raw +. tol))
  in
  let n = max 0 n in
  Array.init (n + 1) (fun i -> lo +. (float_of_int i *. step))

let make ?(vth_step = 0.025) ?(tox_step_angstrom = 0.5) (tech : Tech.t) =
  {
    vths = steps_between ~lo:tech.vth_min ~hi:tech.vth_max ~step:vth_step;
    toxs =
      steps_between ~lo:tech.tox_min ~hi:tech.tox_max
        ~step:(Units.angstrom tox_step_angstrom);
  }

let coarse tech = make ~vth_step:0.05 ~tox_step_angstrom:1.0 tech
let fine tech = make ~vth_step:0.0125 ~tox_step_angstrom:0.25 tech

let knobs t =
  Array.concat
    (Array.to_list
       (Array.map
          (fun vth -> Array.map (fun tox -> Component.knob ~vth ~tox) t.toxs)
          t.vths))

let size t = Array.length t.vths * Array.length t.toxs

let subsample t ~vths ~toxs =
  if vths < 2 || toxs < 2 then invalid_arg "Grid.subsample: counts must be >= 2";
  let pick arr count =
    let n = Array.length arr in
    if count >= n then arr
    else
      (* evenly-spaced indices, endpoints included; rounding can land
         two requests on one index, so dedup keeps the result sorted *)
      let last = ref (-1) in
      let out = ref [] in
      for i = 0 to count - 1 do
        let idx =
          int_of_float
            (Float.round (float_of_int i *. float_of_int (n - 1) /. float_of_int (count - 1)))
        in
        if idx <> !last then begin
          out := arr.(idx) :: !out;
          last := idx
        end
      done;
      Array.of_list (List.rev !out)
  in
  { vths = pick t.vths vths; toxs = pick t.toxs toxs }

let nearest t (k : Component.knob) =
  let closest arr v =
    Array.fold_left
      (fun best x -> if Float.abs (x -. v) < Float.abs (best -. v) then x else best)
      arr.(0) arr
  in
  Component.knob ~vth:(closest t.vths k.Component.vth) ~tox:(closest t.toxs k.Component.tox)
