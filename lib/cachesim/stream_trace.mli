(** Chunked streaming traces: billion-access workloads in O(chunk)
    memory.

    A stream is a chunked view over one of three sources — a lazy
    producer (re-runnable generator), a recorded [PPTRC01] trace file,
    or NDJSON lines piped over a file descriptor — simulated through
    {!Cache}/{!Hierarchy} (and the workload library's profiler)
    without ever materialising the trace.  Chunk boundaries are the
    engine seams: each boundary polls the cooperative deadline, emits
    a [chunk_done] progress event, and — through {!resumable_fold} —
    registers a checkpoint slot, so a SIGKILLed billion-access run
    resumes byte-identically the way sweeps already do.

    Chunking is an implementation grain, never a semantic one: for any
    chunk size, a streamed computation is byte-identical to the same
    computation over the materialised {!Trace.t} (the [oracle.stream]
    verify group and the stream test suite gate this).

    {2 The [PPTRC01] trace file format}

    Little-endian throughout, CRC-32 per record like the checkpoint
    journal ({!Nmcache_engine.Checkpoint}):

    {v
    "PPTRC01\x00"                                      8-byte magic
    [len:u32] header-JSON [crc32:u32]                  name/total/chunk
    [count:u32] [plen:u32] payload [crc32:u32]         one per chunk
    v}

    The payload is delta-encoded: per entry one LEB128 varint of
    [zigzag(addr - prev) * 2 + write], with [prev] reset to 0 at each
    chunk boundary so chunks decode independently.  Reads are
    corruption-tolerant the way journal replay is: records are
    consumed until the first truncated, CRC-mismatching or
    undecodable one, and the torn tail is dropped (counted under the
    [stream.dropped_tail] metric) rather than raised. *)

type t

val default_chunk_size : int
(** 65536 entries. *)

(** {1 Sources} *)

val of_producer :
  ?chunk_size:int ->
  ?key:string ->
  name:string ->
  n:int ->
  (unit -> unit -> Trace.entry) ->
  t
(** [of_producer ~name ~n make]: a lazy generator source of exactly
    [n] entries.  [make] must return a {e fresh} producer each call
    (folds may re-open the stream), and a given producer must be
    deterministic — the streamed-equals-materialised contract depends
    on it.  [key], when given, makes folds over the stream
    checkpointable; it must name every input the entries depend on
    (workload, seed, n, chunk size).  Raises [Invalid_argument] if
    [n < 0] or [chunk_size < 1]. *)

val of_trace : ?chunk_size:int -> ?key:string -> name:string -> Trace.t -> t
(** A stream over an already-materialised trace (tests and the
    differential oracle). *)

val of_file : ?chunk_size:int -> ?key:string -> string -> t
(** A [PPTRC01] trace file.  The header is read (and validated)
    eagerly, so a missing file raises [Sys_error] and a foreign or
    corrupt-headered file raises [Invalid_argument] here, not
    mid-simulation.  The default [key] is derived from the header
    ([pptrc:<name>:<total>:<chunk_size>]), so checkpointed replays of
    the same recording resume across processes.  [chunk_size] is the
    {e streaming} grain and is independent of the on-disk chunking. *)

val of_ndjson_fd : ?chunk_size:int -> name:string -> Unix.file_descr -> t
(** A piped external trace: one NDJSON object per line,
    [{"addr": N, "write": bool?}] ([write] defaults to false), read
    through {!Nmcache_engine.Server}'s bounded-memory line reader
    (1 MiB line bound, blank lines skipped, CRLF tolerated).  The
    stream can be consumed once; a malformed line, an overlong line
    or a negative address raises [Invalid_argument] identifying the
    line number.  Not checkpointable (a pipe cannot be re-read). *)

(** {1 Inspection} *)

val name : t -> string
val chunk_size : t -> int

val key : t -> string option
(** The checkpoint identity of the stream, if it has one. *)

val declared_length : t -> int option
(** Entries the source claims to hold: [Some n] for producers, traces
    and files (the header's [total] — a truncated file may yield
    fewer), [None] for a pipe.  Consumers use it for the warmup
    boundary. *)

(** {1 Folding} *)

val fold_chunks :
  t -> init:'a -> f:('a -> index:int -> Trace.entry array -> 'a) -> 'a
(** Stream every entry through [f] in chunk-sized batches (the last
    chunk may be short; empty streams call [f] zero times).  Memory is
    O(chunk).  Each chunk boundary polls the engine deadline (stage
    [cachesim.stream]), emits an {!Nmcache_engine.Events.Chunk_done}
    progress event when a sink is armed, and counts under the
    [stream.chunks] / [stream.entries] metrics. *)

val resumable_fold :
  ?salt:string ->
  t ->
  init:'s ->
  f:('s -> index:int -> Trace.entry array -> 's) ->
  's
(** {!fold_chunks} with chunk boundaries registered as checkpoint
    slots: when a journal is armed ({!Nmcache_engine.Checkpoint}) and
    the stream has a {!key}, the post-chunk state is journaled under
    [stream\x00<key>\x00<salt>:chunk:<i>] and served back on resume —
    the chunk's [f] is skipped and the journaled state replaces the
    accumulator, so a killed run resumes byte-identically.  The state
    must therefore carry {e everything} the fold mutates (caches,
    counters) and must be marshallable (plain data, no closures);
    [salt] must name every consumer-side input (cache geometry,
    warmup boundary) so two different computations over one stream
    can never serve each other's slots.  Without a journal or a key
    this is exactly {!fold_chunks}. *)

val iter : t -> (Trace.entry -> unit) -> int
(** Feed every entry to a consumer; returns the number of entries
    streamed. *)

(** {1 Simulation drivers} *)

val analyze : t -> Trace.stats
(** Streamed {!Trace.analyze}: identical statistics, O(footprint)
    memory, and — unlike the materialised form — a defined
    {!Trace.zero_stats} answer on an empty stream instead of
    [Invalid_argument]. *)

val replay : t -> Cache.t -> Cache.t * int
(** Stream every entry through a cache.  Checkpoint-aware
    ({!resumable_fold} with the cache geometry as salt): the returned
    cache is the one holding the final state — on a resumed run it is
    a journal-restored object, {e not} the argument — together with
    the entry count. *)

val replay_hierarchy : t -> Hierarchy.t -> Hierarchy.t * int
(** {!replay} through a two-level hierarchy. *)

(** {1 PPTRC01 recording} *)

val magic : string
(** The 8-byte file header, ["PPTRC01\x00"]. *)

val write_file :
  path:string ->
  name:string ->
  ?chunk_size:int ->
  next:(unit -> Trace.entry) ->
  n:int ->
  unit ->
  unit
(** Record [n] entries from a producer to a [PPTRC01] file in
    O(chunk) memory.  [chunk_size] is the on-disk record grain
    (readers re-chunk freely).  Raises [Invalid_argument] if [n < 0]
    or [chunk_size < 1]. *)

val record_stream : path:string -> t -> int
(** Record a stream of {e unknown} length (a piped NDJSON source) to a
    [PPTRC01] file, returning the entry count.  The encoded chunk
    records are spooled to [path ^ ".spool"] while counting, then the
    final file (whose header declares the counted total) is assembled
    and committed with an atomic rename — O(chunk) memory, and no
    partial file is ever visible at [path].  On-disk chunking is the
    stream's {!chunk_size}.  Raises like the stream's fold (e.g.
    [Invalid_argument] on a malformed NDJSON line), cleaning up its
    temporary files. *)

type file_info = {
  fi_name : string;  (** workload name from the header *)
  fi_total : int;  (** entries the header declares *)
  fi_chunk_size : int;  (** on-disk chunk grain *)
  fi_chunks : int;  (** readable (CRC-valid, decodable) chunks *)
  fi_entries : int;  (** entries those chunks hold *)
  fi_dropped_tail : bool;  (** a torn or corrupt tail was dropped *)
}

val file_info : string -> file_info
(** Scan a trace file: header plus a CRC + decode validation pass over
    every chunk ([fi_entries] is exactly what streaming the file will
    yield).  Raises like {!of_file} on a foreign or corrupt header. *)
