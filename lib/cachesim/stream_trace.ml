(* Chunked streaming traces.

   The design constraint is byte-identity: for every chunk size, a
   streamed computation must produce results bitwise-equal to the same
   computation over a materialised [Trace.t].  Chunking therefore only
   decides *when* the engine seams fire (deadline polls, progress
   events, checkpoint slots) — never *what* the consumer observes.
   The test suite and the [oracle.stream] verify group enforce this
   across chunk sizes {1, 7, 4096, whole} and [--jobs] settings.

   Memory is O(chunk): a chunk buffer plus whatever the consumer
   carries.  The PPTRC01 reader additionally holds one decoded on-disk
   record, so a file recorded at a huge chunk grain costs that grain —
   recording and streaming grains are otherwise independent. *)

module Engine = Nmcache_engine

let default_chunk_size = 65536
let magic = "PPTRC01\x00"

(* ---- PPTRC01 codec --------------------------------------------------- *)

(* Per entry, one LEB128 varint of [zigzag(addr - prev) * 2 + write].
   [prev] resets to 0 at each record boundary so records decode
   independently (a dropped tail never poisons earlier records). *)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))

(* returns the entry's address: the caller threads it as [prev] *)
let encode_entry buf prev (e : Trace.entry) =
  let z = zigzag (e.addr - prev) in
  let v = ref ((z lsl 1) lor (if e.write then 1 else 0)) in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done;
  e.addr

(* [None] on any overrun/garbage: the caller treats the record as a
   corrupt tail, mirroring a CRC mismatch *)
let decode_payload payload count =
  let len = String.length payload in
  let out = Array.make (max count 1) { Trace.addr = 0; write = false } in
  let pos = ref 0 in
  let prev = ref 0 in
  try
    for i = 0 to count - 1 do
      let v = ref 0 and shift = ref 0 and continue = ref true in
      while !continue do
        if !pos >= len || !shift > 62 then raise Exit;
        let b = Char.code payload.[!pos] in
        incr pos;
        v := !v lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        continue := b land 0x80 <> 0
      done;
      let addr = !prev + unzigzag (!v lsr 1) in
      prev := addr;
      out.(i) <- { Trace.addr; write = !v land 1 = 1 }
    done;
    if !pos <> len then None else Some (Array.sub out 0 count)
  with Exit -> None

(* Checkpoint's u32 helpers are private to the journal; the trace file
   carries its own (same little-endian layout). *)
let write_u32 oc v =
  output_byte oc (v land 0xff);
  output_byte oc ((v lsr 8) land 0xff);
  output_byte oc ((v lsr 16) land 0xff);
  output_byte oc ((v lsr 24) land 0xff)

let crc_to_u32 crc = Int32.to_int crc land 0xffffffff

(* raises [End_of_file] when the stream ends mid-word *)
let read_u32 ic =
  let b0 = input_byte ic in
  let b1 = input_byte ic in
  let b2 = input_byte ic in
  let b3 = input_byte ic in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

type file_header = {
  fh_name : string;
  fh_total : int;
  fh_chunk : int;
}

let max_header_bytes = 1 lsl 20
let max_payload_bytes = 1 lsl 30

(* Foreign or corrupt headers are a *usage* error (wrong file), not a
   torn tail, so they raise [Invalid_argument] like other bad inputs. *)
let read_header ic ~path =
  let fail why = invalid_arg (Printf.sprintf "%s: %s" path why) in
  match
    let m = really_input_string ic (String.length magic) in
    if m <> magic then `Foreign
    else begin
      let hlen = read_u32 ic in
      if hlen > max_header_bytes then `Corrupt
      else
        let hdr = really_input_string ic hlen in
        let crc = read_u32 ic in
        if crc <> crc_to_u32 (Engine.Checkpoint.crc32 hdr) then `Corrupt
        else
          match Engine.Json.parse hdr with
          | Error _ -> `Corrupt
          | Ok j -> (
            let field name conv =
              Option.bind (Engine.Json.member name j) conv
            in
            match
              ( field "name" Engine.Json.to_str,
                field "total" Engine.Json.to_int,
                field "chunk" Engine.Json.to_int )
            with
            | Some fh_name, Some fh_total, Some fh_chunk
              when fh_total >= 0 && fh_chunk >= 1 ->
              `Header { fh_name; fh_total; fh_chunk }
            | _ -> `Corrupt)
    end
  with
  | `Header h -> h
  | `Foreign -> fail "not a PPTRC01 trace file"
  | `Corrupt -> fail "corrupt PPTRC01 header"
  | exception End_of_file -> fail "not a PPTRC01 trace file (truncated header)"

exception Corrupt_tail

(* [None] at a clean end-of-file (a record boundary); [Corrupt_tail] on
   anything torn — a partial word, short payload, or CRC mismatch. *)
let read_record ic =
  match input_byte ic with
  | exception End_of_file -> None
  | b0 -> (
    try
      let b1 = input_byte ic in
      let b2 = input_byte ic in
      let b3 = input_byte ic in
      let count = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
      let plen = read_u32 ic in
      if plen > max_payload_bytes || count > plen + 1 then raise Corrupt_tail;
      let payload = really_input_string ic plen in
      let crc = read_u32 ic in
      if crc <> crc_to_u32 (Engine.Checkpoint.crc32 payload) then
        raise Corrupt_tail;
      Some (count, payload)
    with End_of_file -> raise Corrupt_tail)

let write_file ~path ~name ?(chunk_size = default_chunk_size) ~next ~n () =
  if n < 0 then invalid_arg "Stream_trace.write_file: n < 0";
  if chunk_size < 1 then invalid_arg "Stream_trace.write_file: chunk_size < 1";
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      let hdr =
        Engine.Json.to_string
          (Engine.Json.Obj
             [
               ("name", Engine.Json.String name);
               ("total", Engine.Json.Int n);
               ("chunk", Engine.Json.Int chunk_size);
             ])
      in
      write_u32 oc (String.length hdr);
      output_string oc hdr;
      write_u32 oc (crc_to_u32 (Engine.Checkpoint.crc32 hdr));
      let buf = Buffer.create (min (4 * chunk_size) (1 lsl 22)) in
      let written = ref 0 in
      while !written < n do
        let count = min chunk_size (n - !written) in
        Buffer.clear buf;
        let prev = ref 0 in
        for _ = 1 to count do
          prev := encode_entry buf !prev (next ())
        done;
        let payload = Buffer.contents buf in
        write_u32 oc count;
        write_u32 oc (String.length payload);
        output_string oc payload;
        write_u32 oc (crc_to_u32 (Engine.Checkpoint.crc32 payload));
        written := !written + count
      done)

type file_info = {
  fi_name : string;
  fi_total : int;
  fi_chunk_size : int;
  fi_chunks : int;
  fi_entries : int;
  fi_dropped_tail : bool;
}

let file_info path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fh = read_header ic ~path in
      let chunks = ref 0 and entries = ref 0 in
      let dropped = ref false and stop = ref false in
      while not !stop do
        match read_record ic with
        | None -> stop := true
        | exception Corrupt_tail ->
          dropped := true;
          stop := true
        | Some (count, payload) -> (
          (* decode too: [fi_entries] must be exactly what streaming
             yields, and streaming drops undecodable records *)
          match decode_payload payload count with
          | None ->
            dropped := true;
            stop := true
          | Some _ ->
            incr chunks;
            entries := !entries + count)
      done;
      if !dropped then Engine.Metrics.incr "stream.dropped_tail";
      {
        fi_name = fh.fh_name;
        fi_total = fh.fh_total;
        fi_chunk_size = fh.fh_chunk;
        fi_chunks = !chunks;
        fi_entries = !entries;
        fi_dropped_tail = !dropped;
      })

(* ---- sources --------------------------------------------------------- *)

type source =
  | Producer of {
      p_name : string;
      p_n : int;
      p_make : unit -> unit -> Trace.entry;
    }
  | Trace_src of { t_name : string; t_trace : Trace.t }
  | File of { f_path : string; f_header : file_header }
  | Fd of { d_name : string; d_fd : Unix.file_descr }

type t = {
  source : source;
  chunk_size : int;
  skey : string option;
}

let check_chunk_size cs =
  if cs < 1 then invalid_arg "Stream_trace: chunk_size < 1"

let of_producer ?(chunk_size = default_chunk_size) ?key ~name ~n make =
  check_chunk_size chunk_size;
  if n < 0 then invalid_arg "Stream_trace.of_producer: n < 0";
  {
    source = Producer { p_name = name; p_n = n; p_make = make };
    chunk_size;
    skey = key;
  }

let of_trace ?(chunk_size = default_chunk_size) ?key ~name trace =
  check_chunk_size chunk_size;
  { source = Trace_src { t_name = name; t_trace = trace }; chunk_size; skey = key }

let of_file ?(chunk_size = default_chunk_size) ?key path =
  check_chunk_size chunk_size;
  let ic = open_in_bin path in
  let header =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> read_header ic ~path)
  in
  let skey =
    match key with
    | Some _ -> key
    | None ->
      (* the stream's checkpoint identity: the recording plus the
         streaming grain (slots are per-chunk, so the grain is an
         input) *)
      Some
        (Printf.sprintf "pptrc:%s:%d:%d" header.fh_name header.fh_total
           chunk_size)
  in
  { source = File { f_path = path; f_header = header }; chunk_size; skey }

let of_ndjson_fd ?(chunk_size = default_chunk_size) ~name fd =
  check_chunk_size chunk_size;
  (* a pipe cannot be re-read, so the stream never gets a checkpoint
     identity: resumable folds degrade to plain folds *)
  { source = Fd { d_name = name; d_fd = fd }; chunk_size; skey = None }

let name t =
  match t.source with
  | Producer { p_name; _ } -> p_name
  | Trace_src { t_name; _ } -> t_name
  | File { f_header; _ } -> f_header.fh_name
  | Fd { d_name; _ } -> d_name

let chunk_size t = t.chunk_size
let key t = t.skey

let declared_length t =
  match t.source with
  | Producer { p_n; _ } -> Some p_n
  | Trace_src { t_trace; _ } -> Some (Trace.length t_trace)
  | File { f_header; _ } -> Some f_header.fh_total
  | Fd _ -> None

(* ---- feeds ----------------------------------------------------------- *)

(* a feed is a pull source plus its cleanup: [next] yields entries until
   [None], [close] releases whatever backs it *)

let file_feed path =
  let ic = open_in_bin path in
  let () =
    match read_header ic ~path with
    | _ -> ()
    | exception e ->
      close_in_noerr ic;
      raise e
  in
  let buf = ref [||] in
  let pos = ref 0 in
  let finished = ref false in
  let drop () =
    Engine.Metrics.incr "stream.dropped_tail";
    finished := true
  in
  let rec next () =
    if !pos < Array.length !buf then begin
      let e = (!buf).(!pos) in
      incr pos;
      Some e
    end
    else if !finished then None
    else
      match read_record ic with
      | None ->
        finished := true;
        None
      | exception Corrupt_tail ->
        drop ();
        None
      | Some (count, payload) -> (
        match decode_payload payload count with
        | None ->
          drop ();
          None
        | Some entries ->
          buf := entries;
          pos := 0;
          next ())
  in
  (next, fun () -> close_in_noerr ic)

let ndjson_feed ~name fd =
  let reader = Engine.Server.make_reader fd in
  let line_no = ref 0 in
  let fail line_no why =
    invalid_arg
      (Printf.sprintf "Stream_trace %s: NDJSON line %d: %s" name line_no why)
  in
  let rec next () =
    match Engine.Server.read_line reader with
    | Engine.Server.Eof | Engine.Server.Drained -> None
    | Engine.Server.Overlong ->
      fail (!line_no + 1)
        (Printf.sprintf "line exceeds %d bytes" Engine.Server.max_line_bytes)
    | Engine.Server.Line line -> (
      incr line_no;
      if String.trim line = "" then next ()
      else
        match Engine.Json.parse line with
        | Error msg -> fail !line_no msg
        | Ok j -> (
          let addr = Option.bind (Engine.Json.member "addr" j) Engine.Json.to_int in
          let write =
            match Engine.Json.member "write" j with
            | Some (Engine.Json.Bool b) -> b
            | Some _ -> fail !line_no "\"write\" must be a boolean"
            | None -> false
          in
          match addr with
          | Some a when a >= 0 -> Some { Trace.addr = a; write }
          | Some _ -> fail !line_no "negative \"addr\""
          | None -> fail !line_no "missing or non-integer \"addr\""))
  in
  (next, fun () -> ())

let feed_of t =
  match t.source with
  | Producer { p_n; p_make; _ } ->
    let produce = p_make () in
    let left = ref p_n in
    let next () =
      if !left <= 0 then None
      else begin
        decr left;
        Some (produce ())
      end
    in
    (next, fun () -> ())
  | Trace_src { t_trace; _ } ->
    let len = Trace.length t_trace in
    let i = ref 0 in
    let next () =
      if !i >= len then None
      else begin
        let e = Trace.get t_trace !i in
        incr i;
        Some e
      end
    in
    (next, fun () -> ())
  | File { f_path; _ } -> file_feed f_path
  | Fd { d_name; d_fd } -> ndjson_feed ~name:d_name d_fd

(* ---- folding --------------------------------------------------------- *)

let dummy_entry = { Trace.addr = 0; write = false }

let fold_chunks t ~init ~f =
  let next, close = feed_of t in
  Fun.protect ~finally:close (fun () ->
      let cs = t.chunk_size in
      let stream_name = name t in
      let acc = ref init in
      let index = ref 0 in
      let stop = ref false in
      while not !stop do
        (* the buffer grows geometrically toward [cs] so a whole-trace
           chunk size never preallocates more than the stream holds *)
        let buf = ref (Array.make (min cs 4096) dummy_entry) in
        let len = ref 0 in
        let full = ref false in
        while not !full do
          if !len >= cs then full := true
          else
            match next () with
            | None ->
              full := true;
              stop := true
            | Some e ->
              if !len >= Array.length !buf then begin
                let bigger =
                  Array.make (min cs (2 * Array.length !buf)) dummy_entry
                in
                Array.blit !buf 0 bigger 0 !len;
                buf := bigger
              end;
              (!buf).(!len) <- e;
              incr len
        done;
        if !len > 0 then begin
          Engine.Deadline.poll ~stage:"cachesim.stream";
          let entries =
            if !len = Array.length !buf then !buf else Array.sub !buf 0 !len
          in
          acc := f !acc ~index:!index entries;
          Engine.Metrics.incr "stream.chunks";
          Engine.Metrics.incr ~by:!len "stream.entries";
          if Engine.Events.enabled () then
            Engine.Events.emit
              (Engine.Events.Chunk_done
                 { stream = stream_name; index = !index; entries = !len });
          incr index
        end
      done;
      !acc)

let slot_key ~skey ~salt index =
  (* pseudo-task namespace "stream": no Sweep task carries that name,
     so slots can never collide with sweep results in a shared journal *)
  Printf.sprintf "stream\x00%s\x00%s:chunk:%d" skey salt index

let resumable_fold ?(salt = "") t ~init ~f =
  match (Engine.Checkpoint.active (), t.skey) with
  | Some journal, Some skey ->
    fold_chunks t ~init ~f:(fun acc ~index entries ->
        let key = slot_key ~skey ~salt index in
        match Engine.Checkpoint.lookup journal ~key with
        | Some state -> state
        | None ->
          let state = f acc ~index entries in
          Engine.Checkpoint.store journal ~key state;
          state)
  | _ -> fold_chunks t ~init ~f

let iter t g =
  fold_chunks t ~init:0 ~f:(fun n ~index:_ entries ->
      Array.iter g entries;
      n + Array.length entries)

(* ---- drivers --------------------------------------------------------- *)

let analyze t =
  let a = Trace.analyzer () in
  let (_ : int) = iter t (Trace.feed_analyzer a) in
  Trace.analyzer_stats a

(* Checkpoint salts must name every consumer-side input, so two
   replays of one stream through different geometries never serve each
   other's slots. *)
let policy_salt = function
  | Replacement.Random seed -> Printf.sprintf "random%d" seed
  | p -> Replacement.name p

let cache_salt c =
  Printf.sprintf "%d:%d:%d:%s" (Cache.size_bytes c) (Cache.assoc c)
    (Cache.block_bytes c)
    (policy_salt (Cache.policy c))

let replay t cache =
  let salt = "replay:" ^ cache_salt cache in
  resumable_fold ~salt t ~init:(cache, 0) ~f:(fun (c, n) ~index:_ entries ->
      Array.iter
        (fun (e : Trace.entry) -> ignore (Cache.access c e.addr ~write:e.write))
        entries;
      (c, n + Array.length entries))

let replay_hierarchy t h =
  let salt =
    Printf.sprintf "hier:%s:%s" (cache_salt (Hierarchy.l1 h))
      (cache_salt (Hierarchy.l2 h))
  in
  resumable_fold ~salt t ~init:(h, 0) ~f:(fun (h, n) ~index:_ entries ->
      Array.iter
        (fun (e : Trace.entry) ->
          ignore (Hierarchy.access h e.addr ~write:e.write))
        entries;
      (h, n + Array.length entries))

(* --- recording a stream of unknown length ---------------------------- *)

(* [write_file] needs [n] up front (the header declares the total), but
   a piped NDJSON source only learns its length at EOF.  Spool the
   encoded chunk records to a side file while counting, then assemble
   magic + header(total) + spooled records and commit with an atomic
   rename — O(chunk) memory, and no half-written file ever sits at
   [path]. *)
let record_stream ~path t =
  let spool = path ^ ".spool" in
  let cleanup f = try Sys.remove f with Sys_error _ -> () in
  match
    let oc = open_out_bin spool in
    let total =
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let buf = Buffer.create (min (4 * chunk_size t) (1 lsl 22)) in
          fold_chunks t ~init:0 ~f:(fun acc ~index:_ entries ->
              Buffer.clear buf;
              let prev = ref 0 in
              Array.iter (fun e -> prev := encode_entry buf !prev e) entries;
              let payload = Buffer.contents buf in
              write_u32 oc (Array.length entries);
              write_u32 oc (String.length payload);
              output_string oc payload;
              write_u32 oc (crc_to_u32 (Engine.Checkpoint.crc32 payload));
              acc + Array.length entries))
    in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        let hdr =
          Engine.Json.to_string
            (Engine.Json.Obj
               [
                 ("name", Engine.Json.String (name t));
                 ("total", Engine.Json.Int total);
                 ("chunk", Engine.Json.Int (chunk_size t));
               ])
        in
        write_u32 oc (String.length hdr);
        output_string oc hdr;
        write_u32 oc (crc_to_u32 (Engine.Checkpoint.crc32 hdr));
        let ic = open_in_bin spool in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let block = Bytes.create 65536 in
            let rec copy () =
              let n = input ic block 0 (Bytes.length block) in
              if n > 0 then begin
                output oc block 0 n;
                copy ()
              end
            in
            copy ()));
    Sys.rename tmp path;
    cleanup spool;
    total
  with
  | total -> total
  | exception e ->
    cleanup spool;
    cleanup (path ^ ".tmp");
    raise e
