(** Single-pass LRU stack-distance (reuse-distance) profiling.

    Mattson's stack algorithm: for each access, the reuse distance is
    the number of {e distinct} blocks touched since the previous access
    to the same block.  A fully-associative LRU cache of capacity C
    blocks misses exactly the accesses whose distance ≥ C (plus cold
    misses), so one profiling pass yields the miss-ratio curve for
    {e every} capacity at once — how the workload library builds
    miss-rate tables efficiently.

    Implementation: a Fenwick tree over access timestamps holding one
    marker per resident block at its last-access time; a distance query
    is a suffix count, O(log n), with periodic timestamp compaction. *)

type t

val create : ?initial_capacity:int -> block_bytes:int -> unit -> t
(** [create ~block_bytes ()] profiles byte addresses at [block_bytes]
    granularity.  Raises [Invalid_argument] unless [block_bytes] is a
    power of two ≥ 8. *)

val access : t -> int -> unit
(** Record an access to a byte address. *)

val set_measuring : t -> bool -> unit
(** While measuring is off (it starts on), accesses still update the
    LRU stack but are not counted — neither in the histogram nor as
    cold misses.  Turn it off for a cache-warming prefix so the curve
    reflects steady state rather than cold-start transients. *)

val accesses : t -> int
(** Measured accesses so far. *)

val distinct_blocks : t -> int
(** Number of distinct resident-tracked blocks (all time). *)

val cold_misses : t -> int
(** First-touch accesses during measurement. *)

val histogram : t -> (int * int) list
(** [(distance, count)] pairs, ascending distance, counting only
    finite-distance (warm) accesses. *)

val misses_at : t -> capacity_blocks:int -> int
(** Misses of a fully-associative LRU cache with the given capacity in
    blocks: measured cold misses + measured warm accesses with distance
    ≥ capacity.  Raises [Invalid_argument] if [capacity_blocks <= 0]. *)

val miss_rate_at : t -> capacity_blocks:int -> float

val cdf : t -> int array * int array
(** [(dists, suffix)]: ascending distinct reuse distances and, aligned
    with them, the number of warm accesses at that distance {e or
    greater}.  One O(|hist|) build answers any capacity query in
    O(log |hist|) via {!suffix_at} — the backing store for derived
    miss-rate curves. *)

val suffix_at : dists:int array -> suffix:int array -> int -> int
(** [suffix_at ~dists ~suffix c] is the number of warm accesses with
    reuse distance ≥ [c], given arrays from {!cdf} (binary search). *)

val miss_ratio_curve : t -> capacities:int array -> float array
(** Vectorised {!miss_rate_at}, answered from one {!cdf} build instead
    of one histogram fold per capacity.  Raises [Invalid_argument] on a
    capacity ≤ 0. *)

val drain_probe_hist : t -> int array
(** {!Intmap.drain_probe_hist} of the internal block → last-access
    map: probe-length counts since the last drain, then zeroed. *)
