(** A set-associative cache with pluggable replacement.

    The model is storage-only (tags, validity, dirtiness); data values
    are never simulated.  Writes are write-back / write-allocate, the
    usual configuration for the caches the paper studies. *)

type t

type outcome = {
  hit : bool;
  victim : int option;        (** evicted block number, if any *)
  victim_dirty : bool;        (** the eviction caused a write-back *)
}

val create :
  size_bytes:int ->
  assoc:int ->
  block_bytes:int ->
  policy:Replacement.t ->
  unit ->
  t
(** Raises [Invalid_argument] unless sizes are powers of two,
    [assoc >= 1], [block_bytes >= 8], and capacity holds at least one
    set; PLRU additionally requires power-of-two associativity. *)

val size_bytes : t -> int
val assoc : t -> int
val block_bytes : t -> int
val sets : t -> int
val policy : t -> Replacement.t
val stats : t -> Stats.t

val access : t -> int -> write:bool -> outcome
(** Look up the byte address; on a miss the block is installed and a
    victim (possibly) evicted.  Updates statistics. *)

val contains : t -> int -> bool
(** Whether the block holding this byte address is currently resident
    (no statistics side effects, no recency update). *)

val reset_stats : t -> unit

val valid_blocks : t -> int list
(** Block numbers currently resident (unordered); for tests. *)

val drain_probe_hist : t -> int array
(** {!Intmap.drain_probe_hist} of the internal first-touch set:
    probe-length counts since the last drain, then zeroed. *)
