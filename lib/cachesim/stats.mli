(** Access counters for one cache level. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable read_accesses : int;
  mutable write_accesses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable cold_misses : int;  (** misses to never-before-seen blocks *)
}

val create : unit -> t
val reset : t -> unit

val miss_rate : t -> float
(** misses / accesses; 0 when there were no accesses. *)

val hit_rate : t -> float

val record : t -> hit:bool -> write:bool -> unit
(** Bump the access/hit-or-miss/read-or-write counters. *)

val flush_to_metrics : prefix:string -> t -> unit
(** Add every non-zero counter to the {!Nmcache_engine.Metrics}
    registry as [<prefix>.accesses], [<prefix>.misses], … — called
    once per finished simulation so per-access bookkeeping never takes
    the registry lock. *)

val pp : Format.formatter -> t -> unit
