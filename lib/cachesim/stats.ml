type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable read_accesses : int;
  mutable write_accesses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable cold_misses : int;
}

let create () =
  {
    accesses = 0;
    hits = 0;
    misses = 0;
    read_accesses = 0;
    write_accesses = 0;
    evictions = 0;
    writebacks = 0;
    cold_misses = 0;
  }

let reset t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.read_accesses <- 0;
  t.write_accesses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0;
  t.cold_misses <- 0

let miss_rate t = if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses
let hit_rate t = if t.accesses = 0 then 0.0 else float_of_int t.hits /. float_of_int t.accesses

let record t ~hit ~write =
  t.accesses <- t.accesses + 1;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  if write then t.write_accesses <- t.write_accesses + 1
  else t.read_accesses <- t.read_accesses + 1

(* Bulk flush into the engine metrics registry — one call per finished
   simulation, never per access, so the simulator's hot loop stays
   lock-free. *)
let flush_to_metrics ~prefix t =
  let module Metrics = Nmcache_engine.Metrics in
  let add name v = if v <> 0 then Metrics.incr ~by:v (prefix ^ "." ^ name) in
  add "accesses" t.accesses;
  add "hits" t.hits;
  add "misses" t.misses;
  add "evictions" t.evictions;
  add "writebacks" t.writebacks;
  add "cold_misses" t.cold_misses

let pp fmt t =
  Format.fprintf fmt "acc=%d hit=%d miss=%d (%.3f%%) wb=%d cold=%d" t.accesses t.hits
    t.misses (100.0 *. miss_rate t) t.writebacks t.cold_misses
