(** Recorded address traces: capture, replay, and summary statistics.

    Generators are cheap to re-run, but a materialised trace is useful
    for (a) replaying the identical stream through different cache
    configurations, (b) characterising a workload (footprint, write
    fraction, sequentiality) and (c) regression-testing generators
    against golden numbers. *)

type entry = {
  addr : int;
  write : bool;
}

type t
(** An immutable recorded trace. *)

val of_entries : entry array -> t
(** Wrap an array (copied). *)

val record : next:(unit -> entry) -> n:int -> t
(** Pull [n] entries from a producer.  Raises [Invalid_argument] if
    [n < 0]. *)

val length : t -> int
val get : t -> int -> entry
val iter : t -> (entry -> unit) -> unit

val replay : t -> Cache.t -> unit
(** Run every entry through a cache (statistics accumulate in the
    cache). *)

val replay_hierarchy : t -> Hierarchy.t -> unit

type stats = {
  accesses : int;
  writes : int;
  distinct_blocks : int;   (** at 64-byte granularity *)
  footprint_bytes : int;   (** distinct blocks × 64 *)
  sequential_fraction : float;
      (** fraction of accesses whose address is within +64 bytes of the
          previous access *)
}

val analyze : t -> stats
(** Single pass summary.  Raises [Invalid_argument] on an empty
    trace. *)

val zero_stats : stats
(** The defined answer for an empty stream: all counters 0,
    [sequential_fraction] 0.0.  {!Stream_trace.analyze} returns it
    instead of raising like {!analyze}. *)

(** {1 Incremental analysis}

    The streaming engine computes {!stats} over traces that are never
    materialised; the analyzer is the incremental form of {!analyze}
    (O(footprint) memory — the distinct-block set — independent of
    trace length).  [analyze] itself is one fold over it. *)

type analyzer

val analyzer : unit -> analyzer
val feed_analyzer : analyzer -> entry -> unit

val analyzer_stats : analyzer -> stats
(** Summary of everything fed so far; {!zero_stats} when nothing was
    (total, unlike {!analyze}). *)

val pp_stats : Format.formatter -> stats -> unit
