(** Flat open-addressing int → int hash map for the simulator hot loops
    (cold-miss first-touch sets, Mattson last-access timestamps).

    Linear probing over two parallel [int array]s — no per-entry boxing,
    no bucket lists — with growth at 3/4 load.  Deletion is not
    supported (the simulators only insert and overwrite), which keeps
    probing tombstone-free.  Keys must be non-negative; [min_int] is the
    internal empty marker. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Capacity is rounded up to a power of two, minimum 16. *)

val length : t -> int
(** Number of distinct keys present. *)

val find : t -> int -> default:int -> int
(** Value bound to the key, or [default] if absent. *)

val mem : t -> int -> bool

val replace : t -> int -> int -> unit
(** Insert or overwrite.  Raises [Invalid_argument] on a negative key. *)

val add_if_absent : t -> int -> bool
(** Insert the key (bound to 0) if absent and return [true]; return
    [false] if it was already present.  One probe for the common
    membership-then-insert pattern.  Raises [Invalid_argument] on a
    negative key. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over all bindings in unspecified order. *)

val clear : t -> unit
(** Remove all bindings, keeping the allocated capacity. *)

val probe_hist_buckets : int
(** Number of probe-length buckets (17): index [i < 16] counts lookups
    that inspected [i] slots past the first (0 = direct hit), the last
    bucket aggregates 16 and beyond. *)

val drain_probe_hist : t -> int array
(** Return the per-map probe-length counts accumulated since creation
    (or the last drain) and zero them.  [grow]'s internal rehash does
    not count.  The profile layer drains this into the Metrics
    registry after each trace traversal. *)
