module Rng = Nmcache_numerics.Rng

type t = {
  size_bytes : int;
  assoc : int;
  block_bytes : int;
  sets : int;
  policy : Replacement.t;
  (* address decomposition, precomputed once so the access loop is pure
     shift/mask work *)
  block_shift : int;       (* log2 block_bytes *)
  set_mask : int;          (* sets - 1 *)
  set_shift : int;         (* log2 sets *)
  tags : int array;        (* sets * assoc; -1 = invalid; holds tag *)
  dirty : Bytes.t;         (* sets * assoc booleans *)
  stamp : int array;       (* LRU recency / FIFO install order *)
  plru : int array;        (* per-set PLRU tree bits *)
  rng : Rng.t;
  mutable clock : int;
  stats : Stats.t;
  seen : Intmap.t;         (* all-time first-touch set, consulted on misses only *)
}

type outcome = {
  hit : bool;
  victim : int option;
  victim_dirty : bool;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create ~size_bytes ~assoc ~block_bytes ~policy () =
  if not (is_pow2 size_bytes) then invalid_arg "Cache.create: size not a power of two";
  if not (is_pow2 block_bytes) || block_bytes < 8 then
    invalid_arg "Cache.create: bad block size";
  if assoc < 1 then invalid_arg "Cache.create: assoc < 1";
  if size_bytes < assoc * block_bytes then invalid_arg "Cache.create: capacity < one set";
  let sets = size_bytes / (assoc * block_bytes) in
  if not (is_pow2 sets) then invalid_arg "Cache.create: set count not a power of two";
  (match policy with
  | Replacement.Plru when not (is_pow2 assoc) ->
    invalid_arg "Cache.create: PLRU requires power-of-two associativity"
  | Replacement.Lru | Replacement.Fifo | Replacement.Random _ | Replacement.Plru -> ());
  let seed = match policy with Replacement.Random s -> s | _ -> 0 in
  {
    size_bytes;
    assoc;
    block_bytes;
    sets;
    policy;
    block_shift = log2 block_bytes;
    set_mask = sets - 1;
    set_shift = log2 sets;
    tags = Array.make (sets * assoc) (-1);
    dirty = Bytes.make (sets * assoc) '\000';
    stamp = Array.make (sets * assoc) 0;
    plru = Array.make sets 0;
    rng = Rng.create ~seed:(Int64.of_int seed);
    clock = 0;
    stats = Stats.create ();
    seen = Intmap.create ~initial_capacity:4096 ();
  }

let size_bytes t = t.size_bytes
let assoc t = t.assoc
let block_bytes t = t.block_bytes
let sets t = t.sets
let policy t = t.policy
let stats t = t.stats
let reset_stats t = Stats.reset t.stats

(* Way holding [tag] in the set at [base], or -1.  Unrolled for the
   associativities the experiments sweep (1/2/4/8); returning an int
   keeps the hot path allocation-free. *)
let find_way t base tag =
  let tags = t.tags in
  match t.assoc with
  | 1 -> if tags.(base) = tag then 0 else -1
  | 2 -> if tags.(base) = tag then 0 else if tags.(base + 1) = tag then 1 else -1
  | 4 ->
    if tags.(base) = tag then 0
    else if tags.(base + 1) = tag then 1
    else if tags.(base + 2) = tag then 2
    else if tags.(base + 3) = tag then 3
    else -1
  | 8 ->
    if tags.(base) = tag then 0
    else if tags.(base + 1) = tag then 1
    else if tags.(base + 2) = tag then 2
    else if tags.(base + 3) = tag then 3
    else if tags.(base + 4) = tag then 4
    else if tags.(base + 5) = tag then 5
    else if tags.(base + 6) = tag then 6
    else if tags.(base + 7) = tag then 7
    else -1
  | a ->
    let rec go w =
      if w >= a then -1 else if tags.(base + w) = tag then w else go (w + 1)
    in
    go 0

(* PLRU: the tree bits of a set select a way; touching a way points the
   bits away from it. *)
let plru_victim t set =
  let bits = t.plru.(set) in
  (* internal nodes are 0 .. assoc-2, leaves assoc-1 .. 2*assoc-2 *)
  let rec descend node =
    if node >= t.assoc - 1 then node - (t.assoc - 1)
    else begin
      let bit = (bits lsr node) land 1 in
      descend ((2 * node) + 1 + bit)
    end
  in
  if t.assoc = 1 then 0 else descend 0

let plru_touch t set way =
  if t.assoc > 1 then begin
    let bits = ref t.plru.(set) in
    (* walk from the leaf up, setting each internal bit away from the
       taken direction *)
    let node = ref (way + t.assoc - 1) in
    while !node > 0 do
      let parent = (!node - 1) / 2 in
      let went_right = !node = (2 * parent) + 2 in
      let mask = 1 lsl parent in
      if went_right then bits := !bits land lnot mask else bits := !bits lor mask;
      node := parent
    done;
    t.plru.(set) <- !bits
  end

let choose_victim t set =
  let base = set * t.assoc in
  (* prefer an invalid way *)
  let rec find_invalid w =
    if w >= t.assoc then None else if t.tags.(base + w) = -1 then Some w else find_invalid (w + 1)
  in
  match find_invalid 0 with
  | Some w -> w
  | None -> (
    match t.policy with
    | Replacement.Lru | Replacement.Fifo ->
      let best = ref 0 in
      for w = 1 to t.assoc - 1 do
        if t.stamp.(base + w) < t.stamp.(base + !best) then best := w
      done;
      !best
    | Replacement.Random _ -> Rng.int t.rng ~bound:t.assoc
    | Replacement.Plru -> plru_victim t set)

let touch t set way =
  let base = set * t.assoc in
  (match t.policy with
  | Replacement.Lru -> t.stamp.(base + way) <- t.clock
  | Replacement.Fifo | Replacement.Random _ -> ()
  | Replacement.Plru -> plru_touch t set way);
  t.clock <- t.clock + 1

let install t set way tag ~write =
  let base = set * t.assoc in
  t.tags.(base + way) <- tag;
  Bytes.set t.dirty (base + way) (if write then '\001' else '\000');
  (match t.policy with
  | Replacement.Fifo -> t.stamp.(base + way) <- t.clock
  | Replacement.Lru -> t.stamp.(base + way) <- t.clock
  | Replacement.Random _ | Replacement.Plru -> ());
  touch t set way

let block_number_of t set tag = (tag * t.sets) + set

let access t addr ~write =
  let block = addr lsr t.block_shift in
  let set = block land t.set_mask in
  let tag = block lsr t.set_shift in
  let base = set * t.assoc in
  let way = find_way t base tag in
  if way >= 0 then begin
    Stats.record t.stats ~hit:true ~write;
    if write then Bytes.set t.dirty (base + way) '\001';
    touch t set way;
    { hit = true; victim = None; victim_dirty = false }
  end
  else begin
    Stats.record t.stats ~hit:false ~write;
    (* a hit implies the block was installed by an earlier miss and is
       already in [seen], so first-touch tracking only needs the miss
       path *)
    let cold = Intmap.add_if_absent t.seen block in
    if cold then t.stats.Stats.cold_misses <- t.stats.Stats.cold_misses + 1;
    let way = choose_victim t set in
    let old_tag = t.tags.(base + way) in
    let victim, victim_dirty =
      if old_tag = -1 then (None, false)
      else begin
        t.stats.Stats.evictions <- t.stats.Stats.evictions + 1;
        let d = Bytes.get t.dirty (base + way) = '\001' in
        if d then t.stats.Stats.writebacks <- t.stats.Stats.writebacks + 1;
        (Some (block_number_of t set old_tag), d)
      end
    in
    install t set way tag ~write;
    { hit = false; victim; victim_dirty }
  end

let contains t addr =
  let block = addr lsr t.block_shift in
  let set = block land t.set_mask in
  let tag = block lsr t.set_shift in
  find_way t (set * t.assoc) tag >= 0

let valid_blocks t =
  let acc = ref [] in
  for set = 0 to t.sets - 1 do
    for w = 0 to t.assoc - 1 do
      let tag = t.tags.((set * t.assoc) + w) in
      if tag <> -1 then acc := block_number_of t set tag :: !acc
    done
  done;
  !acc

(* expose the first-touch set's probe-length counts so the profile
   layer can drain them into the Metrics registry after a traversal *)
let drain_probe_hist t = Intmap.drain_probe_hist t.seen
