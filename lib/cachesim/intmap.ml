(* Open-addressing int -> int hash map with flat arrays and linear
   probing, for the simulator hot loops (cold-miss sets, last-access
   timestamps).  No deletion — the simulators only insert and
   overwrite — so probe chains never need tombstones.  Keys must be
   non-negative (block numbers, timestamps); [min_int] marks an empty
   slot. *)

(* probe-length accounting: bucket i counts lookups that inspected i
   extra slots past the first (0 = direct hit); the last bucket
   aggregates 16+.  Kept per map as a plain array bump — the hot loops
   must never touch a lock — and drained into the Metrics registry in
   bulk by the profile layer. *)
let probe_hist_buckets = 17

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int;          (* capacity - 1; capacity a power of two *)
  mutable size : int;
  mutable limit : int;         (* grow when [size] reaches this *)
  probe_hist : int array;
}

let empty_key = min_int

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let make_arrays capacity =
  (Array.make capacity empty_key, Array.make capacity 0)

let limit_of capacity = capacity - (capacity / 4) (* 0.75 load factor *)

let create ?(initial_capacity = 16) () =
  let capacity = pow2_at_least (max 16 initial_capacity) 16 in
  let keys, vals = make_arrays capacity in
  {
    keys;
    vals;
    mask = capacity - 1;
    size = 0;
    limit = limit_of capacity;
    probe_hist = Array.make probe_hist_buckets 0;
  }

(* Fibonacci-style multiplicative mix: consecutive block numbers (the
   common case for streaming workloads) must not collide into one probe
   chain. *)
let hash k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let length t = t.size

let rec probe keys mask k i =
  let slot = i land mask in
  let cur = keys.(slot) in
  if cur = k || cur = empty_key then slot else probe keys mask k (i + 1)

(* the counted variant used by the public operations; [grow]'s rehash
   keeps the free [probe] so resizes don't pollute the histogram *)
let probe_counted t k =
  let keys = t.keys and mask = t.mask in
  let rec go i n =
    let slot = i land mask in
    let cur = keys.(slot) in
    if cur = k || cur = empty_key then begin
      let b = if n >= probe_hist_buckets then probe_hist_buckets - 1 else n in
      t.probe_hist.(b) <- t.probe_hist.(b) + 1;
      slot
    end
    else go (i + 1) (n + 1)
  in
  go (hash k) 0

let drain_probe_hist t =
  let out = Array.copy t.probe_hist in
  Array.fill t.probe_hist 0 probe_hist_buckets 0;
  out

let grow t =
  let capacity = (t.mask + 1) * 2 in
  let keys, vals = make_arrays capacity in
  let mask = capacity - 1 in
  let old_keys = t.keys and old_vals = t.vals in
  for i = 0 to Array.length old_keys - 1 do
    let k = old_keys.(i) in
    if k <> empty_key then begin
      let slot = probe keys mask k (hash k) in
      keys.(slot) <- k;
      vals.(slot) <- old_vals.(i)
    end
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.limit <- limit_of capacity

let find t k ~default =
  let slot = probe_counted t k in
  if t.keys.(slot) = k then t.vals.(slot) else default

let mem t k =
  let slot = probe_counted t k in
  t.keys.(slot) = k

let replace t k v =
  if k < 0 then invalid_arg "Intmap.replace: negative key";
  let slot = probe_counted t k in
  if t.keys.(slot) = k then t.vals.(slot) <- v
  else begin
    t.keys.(slot) <- k;
    t.vals.(slot) <- v;
    t.size <- t.size + 1;
    if t.size >= t.limit then grow t
  end

let add_if_absent t k =
  if k < 0 then invalid_arg "Intmap.add_if_absent: negative key";
  let slot = probe_counted t k in
  if t.keys.(slot) = k then false
  else begin
    t.keys.(slot) <- k;
    t.vals.(slot) <- 0;
    t.size <- t.size + 1;
    if t.size >= t.limit then grow t;
    true
  end

let fold f t init =
  let acc = ref init in
  for i = 0 to Array.length t.keys - 1 do
    if t.keys.(i) <> empty_key then acc := f t.keys.(i) t.vals.(i) !acc
  done;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.size <- 0
