(* Fenwick (binary indexed) tree over timestamps.  tree.(i) covers a
   range ending at i (1-based).  A '1' sits at the last-access time of
   each resident block; suffix_count(time) counts blocks accessed
   strictly after [time], which is exactly the reuse distance. *)

type t = {
  block_bytes : int;
  block_shift : int;            (* log2 block_bytes *)
  mutable tree : int array;     (* 1-based Fenwick array *)
  mutable capacity : int;
  mutable time : int;           (* next timestamp, 0-based *)
  mutable live : int;           (* markers in the tree *)
  last_access : Intmap.t;       (* block -> timestamp *)
  mutable hist : int array;     (* hist.(d) = warm accesses at distance d *)
  mutable hist_used : int;      (* 1 + highest distance recorded, 0 if none *)
  mutable accesses : int;       (* measured accesses *)
  mutable measuring : bool;
  mutable cold_measured : int;
}

let log2 n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create ?(initial_capacity = 1 lsl 16) ~block_bytes () =
  if block_bytes < 8 || block_bytes land (block_bytes - 1) <> 0 then
    invalid_arg "Mattson.create: bad block_bytes";
  {
    block_bytes;
    block_shift = log2 block_bytes;
    tree = Array.make (initial_capacity + 1) 0;
    capacity = initial_capacity;
    time = 0;
    live = 0;
    last_access = Intmap.create ~initial_capacity:4096 ();
    hist = Array.make 256 0;
    hist_used = 0;
    accesses = 0;
    measuring = true;
    cold_measured = 0;
  }

let fen_add t idx delta =
  (* idx is a 0-based timestamp *)
  let i = ref (idx + 1) in
  while !i <= t.capacity do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let fen_prefix t idx =
  (* count of markers at timestamps <= idx (0-based) *)
  let acc = ref 0 in
  let i = ref (idx + 1) in
  while !i > 0 do
    acc := !acc + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

(* Renumber timestamps 0..live-1 preserving order, rebuilding the tree.
   Triggered when the timestamp space fills; amortised O(B log B). *)
let compact t =
  let entries = Intmap.fold (fun block time acc -> (time, block) :: acc) t.last_access [] in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let n = List.length sorted in
  let new_capacity = max (1 lsl 16) (4 * n) in
  t.tree <- Array.make (new_capacity + 1) 0;
  t.capacity <- new_capacity;
  t.time <- 0;
  t.live <- 0;
  Intmap.clear t.last_access;
  List.iter
    (fun (_, block) ->
      Intmap.replace t.last_access block t.time;
      fen_add t t.time 1;
      t.live <- t.live + 1;
      t.time <- t.time + 1)
    sorted

let bump_hist t dist =
  if dist >= Array.length t.hist then begin
    let grown = Array.make (max (2 * Array.length t.hist) (dist + 1)) 0 in
    Array.blit t.hist 0 grown 0 t.hist_used;
    t.hist <- grown
  end;
  t.hist.(dist) <- t.hist.(dist) + 1;
  if dist >= t.hist_used then t.hist_used <- dist + 1

let set_measuring t flag = t.measuring <- flag

(* sentinel for "block never seen": timestamps are >= 0 *)
let no_time = -1

let access t addr =
  if t.time >= t.capacity then compact t;
  let block = addr lsr t.block_shift in
  if t.measuring then t.accesses <- t.accesses + 1;
  let prev = Intmap.find t.last_access block ~default:no_time in
  if prev >= 0 then begin
    (* distance = markers strictly after prev = live - prefix(prev) *)
    if t.measuring then bump_hist t (t.live - fen_prefix t prev);
    fen_add t prev (-1);
    t.live <- t.live - 1
  end
  else if t.measuring then t.cold_measured <- t.cold_measured + 1;
  Intmap.replace t.last_access block t.time;
  fen_add t t.time 1;
  t.live <- t.live + 1;
  t.time <- t.time + 1

let accesses t = t.accesses
let distinct_blocks t = Intmap.length t.last_access
let cold_misses t = t.cold_measured

let histogram t =
  let acc = ref [] in
  for d = t.hist_used - 1 downto 0 do
    if t.hist.(d) > 0 then acc := (d, t.hist.(d)) :: !acc
  done;
  !acc

let misses_at t ~capacity_blocks =
  if capacity_blocks <= 0 then invalid_arg "Mattson.misses_at: capacity <= 0";
  let warm_misses = ref 0 in
  for d = capacity_blocks to t.hist_used - 1 do
    warm_misses := !warm_misses + t.hist.(d)
  done;
  t.cold_measured + !warm_misses

let miss_rate_at t ~capacity_blocks =
  if t.accesses = 0 then 0.0
  else float_of_int (misses_at t ~capacity_blocks) /. float_of_int t.accesses

(* Suffix CDF: sorted distinct distances plus, for each, the number of
   warm accesses at that distance or greater.  Built once in O(|hist|);
   each capacity query is then a binary search instead of re-folding
   the whole histogram. *)
let cdf t =
  let distinct = ref 0 in
  for d = 0 to t.hist_used - 1 do
    if t.hist.(d) > 0 then incr distinct
  done;
  let dists = Array.make !distinct 0 in
  let suffix = Array.make !distinct 0 in
  let i = ref (!distinct - 1) in
  let running = ref 0 in
  for d = t.hist_used - 1 downto 0 do
    if t.hist.(d) > 0 then begin
      running := !running + t.hist.(d);
      dists.(!i) <- d;
      suffix.(!i) <- !running;
      decr i
    end
  done;
  (dists, suffix)

let suffix_at ~dists ~suffix capacity_blocks =
  let n = Array.length dists in
  if n = 0 || dists.(n - 1) < capacity_blocks then 0
  else begin
    (* smallest i with dists.(i) >= capacity_blocks *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if dists.(mid) >= capacity_blocks then hi := mid else lo := mid + 1
    done;
    suffix.(!lo)
  end

let miss_ratio_curve t ~capacities =
  let dists, suffix = cdf t in
  Array.map
    (fun c ->
      if c <= 0 then invalid_arg "Mattson.miss_ratio_curve: capacity <= 0";
      if t.accesses = 0 then 0.0
      else
        float_of_int (t.cold_measured + suffix_at ~dists ~suffix c)
        /. float_of_int t.accesses)
    capacities

(* expose the last-access map's probe-length counts so the profile
   layer can drain them into the Metrics registry after a traversal *)
let drain_probe_hist t = Intmap.drain_probe_hist t.last_access
