type entry = {
  addr : int;
  write : bool;
}

type t = entry array

let of_entries a = Array.copy a

let record ~next ~n =
  if n < 0 then invalid_arg "Trace.record: n < 0";
  Array.init n (fun _ -> next ())

let length = Array.length
let get t i = t.(i)
let iter t f = Array.iter f t

(* replay loops carry the engine's cooperative deadline seam: one poll
   every 4096 accesses converts a wedged replay into a typed
   [timed_out] fault without measurable overhead *)
let replay t cache =
  Array.iteri
    (fun i e ->
      if i land 4095 = 4095 then Nmcache_engine.Deadline.poll ~stage:"cachesim.replay";
      ignore (Cache.access cache e.addr ~write:e.write))
    t

let replay_hierarchy t h =
  Array.iteri
    (fun i e ->
      if i land 4095 = 4095 then Nmcache_engine.Deadline.poll ~stage:"cachesim.replay";
      ignore (Hierarchy.access h e.addr ~write:e.write))
    t

type stats = {
  accesses : int;
  writes : int;
  distinct_blocks : int;
  footprint_bytes : int;
  sequential_fraction : float;
}

let zero_stats =
  {
    accesses = 0;
    writes = 0;
    distinct_blocks = 0;
    footprint_bytes = 0;
    sequential_fraction = 0.0;
  }

(* Incremental form of [analyze], shared with the streaming engine:
   memory is O(footprint) — the distinct-block set — never O(trace). *)
type analyzer = {
  blocks : (int, unit) Hashtbl.t;
  mutable a_accesses : int;
  mutable a_writes : int;
  mutable a_sequential : int;
  mutable a_prev : int;
}

let analyzer () =
  {
    blocks = Hashtbl.create 4096;
    a_accesses = 0;
    a_writes = 0;
    a_sequential = 0;
    a_prev = min_int;
  }

let feed_analyzer a e =
  a.a_accesses <- a.a_accesses + 1;
  if e.write then a.a_writes <- a.a_writes + 1;
  Hashtbl.replace a.blocks (e.addr / 64) ();
  if a.a_prev <> min_int && e.addr >= a.a_prev && e.addr <= a.a_prev + 64 then
    a.a_sequential <- a.a_sequential + 1;
  a.a_prev <- e.addr

(* total, unlike [analyze]: an empty stream has a defined answer *)
let analyzer_stats a =
  if a.a_accesses = 0 then zero_stats
  else
    {
      accesses = a.a_accesses;
      writes = a.a_writes;
      distinct_blocks = Hashtbl.length a.blocks;
      footprint_bytes = 64 * Hashtbl.length a.blocks;
      sequential_fraction =
        float_of_int a.a_sequential /. float_of_int a.a_accesses;
    }

let analyze t =
  if Array.length t = 0 then invalid_arg "Trace.analyze: empty trace";
  let a = analyzer () in
  Array.iter (feed_analyzer a) t;
  analyzer_stats a

let pp_stats fmt s =
  Format.fprintf fmt
    "%d accesses (%.1f%% writes), footprint %d blocks (%.1f KB), %.1f%% sequential"
    s.accesses
    (100.0 *. float_of_int s.writes /. float_of_int (max 1 s.accesses))
    s.distinct_blocks
    (float_of_int s.footprint_bytes /. 1024.0)
    (100.0 *. s.sequential_fraction)
