type entry = {
  addr : int;
  write : bool;
}

type t = entry array

let of_entries a = Array.copy a

let record ~next ~n =
  if n < 0 then invalid_arg "Trace.record: n < 0";
  Array.init n (fun _ -> next ())

let length = Array.length
let get t i = t.(i)
let iter t f = Array.iter f t

(* replay loops carry the engine's cooperative deadline seam: one poll
   every 4096 accesses converts a wedged replay into a typed
   [timed_out] fault without measurable overhead *)
let replay t cache =
  Array.iteri
    (fun i e ->
      if i land 4095 = 4095 then Nmcache_engine.Deadline.poll ~stage:"cachesim.replay";
      ignore (Cache.access cache e.addr ~write:e.write))
    t

let replay_hierarchy t h =
  Array.iteri
    (fun i e ->
      if i land 4095 = 4095 then Nmcache_engine.Deadline.poll ~stage:"cachesim.replay";
      ignore (Hierarchy.access h e.addr ~write:e.write))
    t

type stats = {
  accesses : int;
  writes : int;
  distinct_blocks : int;
  footprint_bytes : int;
  sequential_fraction : float;
}

let analyze t =
  if Array.length t = 0 then invalid_arg "Trace.analyze: empty trace";
  let blocks = Hashtbl.create 4096 in
  let writes = ref 0 in
  let sequential = ref 0 in
  let prev = ref min_int in
  Array.iter
    (fun e ->
      if e.write then incr writes;
      Hashtbl.replace blocks (e.addr / 64) ();
      if !prev <> min_int && e.addr >= !prev && e.addr <= !prev + 64 then incr sequential;
      prev := e.addr)
    t;
  let n = Array.length t in
  {
    accesses = n;
    writes = !writes;
    distinct_blocks = Hashtbl.length blocks;
    footprint_bytes = 64 * Hashtbl.length blocks;
    sequential_fraction = float_of_int !sequential /. float_of_int n;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d accesses (%.1f%% writes), footprint %d blocks (%.1f KB), %.1f%% sequential"
    s.accesses
    (100.0 *. float_of_int s.writes /. float_of_int (max 1 s.accesses))
    s.distinct_blocks
    (float_of_int s.footprint_bytes /. 1024.0)
    (100.0 *. s.sequential_fraction)
